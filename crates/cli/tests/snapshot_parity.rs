//! Query parity between the two preprocessing paths: an engine built from a
//! text/JSONL dataset (discovery + index build at load time) and an engine
//! built from a compiled `.bgpq` snapshot of the same dataset must return
//! identical answers for every checked-in query, under both bounded
//! matching (bVF2) and bounded simulation (bSim).

use bgpq_cli::dataset::{load_dataset, Format};
use bgpq_engine::{
    discover_schema, parse_pattern, read_snapshot, write_snapshot, AccessIndexSet, DiscoveryConfig,
    Engine, QueryAnswer, QueryRequest, Semantics, StrategyKind,
};
use std::io::Cursor;
use std::path::{Path, PathBuf};

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data")
}

/// The checked-in datasets and their matching query patterns.
fn checked_in() -> Vec<(PathBuf, PathBuf)> {
    let data = data_dir();
    vec![
        (data.join("social.tsv"), data.join("queries/social.pat")),
        (
            data.join("citation.jsonl"),
            data.join("queries/citation.pat"),
        ),
        (
            data.join("products.jsonl"),
            data.join("queries/products.pat"),
        ),
    ]
}

/// Order-independent normal form of a query answer for equality checks.
fn normalize(answer: &QueryAnswer, pattern: &bgpq_pattern::Pattern) -> Vec<Vec<u32>> {
    match answer {
        QueryAnswer::Matches(matches) => {
            let mut rows: Vec<Vec<u32>> = matches
                .iter()
                .map(|m| pattern.nodes().map(|u| m.node_for(u).0).collect())
                .collect();
            rows.sort();
            rows
        }
        QueryAnswer::Simulation(relation) => pattern
            .nodes()
            .map(|u| {
                let mut vs: Vec<u32> = relation.matches_of(u).iter().map(|v| v.0).collect();
                vs.sort_unstable();
                vs
            })
            .collect(),
    }
}

#[test]
fn snapshot_and_text_engines_answer_identically_on_checked_in_queries() {
    for (dataset, query) in checked_in() {
        let (graph, _) = load_dataset(&dataset, None, "node")
            .unwrap_or_else(|e| panic!("{}: {e}", dataset.display()));
        let schema = discover_schema(&graph, &DiscoveryConfig::default());
        let indices = AccessIndexSet::build(&graph, &schema);

        // Path A: the graph as parsed, schema discovered, indices built now.
        let fresh = Engine::with_indices(graph.clone(), indices.clone());
        // Path B: compile to an in-memory snapshot, load it back, serve
        // from the embedded schema and indices without rebuilding.
        let mut bytes = Vec::new();
        write_snapshot(&graph, &indices, &mut bytes)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", dataset.display()));
        let bundle = read_snapshot(Cursor::new(bytes))
            .unwrap_or_else(|e| panic!("{}: load: {e}", dataset.display()));
        assert_eq!(bundle.schema.len(), schema.len(), "schema survived");
        let snapped = Engine::from_snapshot(bundle);

        let text =
            std::fs::read_to_string(&query).unwrap_or_else(|e| panic!("{}: {e}", query.display()));
        let pattern = parse_pattern(&text, fresh.graph().interner().clone())
            .unwrap_or_else(|e| panic!("{}: {e}", query.display()));

        for semantics in [Semantics::Isomorphism, Semantics::Simulation] {
            for strategy in [None, Some(StrategyKind::Bounded)] {
                let build = |p| {
                    let mut b = QueryRequest::build(p).semantics(semantics);
                    if let Some(kind) = strategy {
                        b = b.strategy(kind);
                    }
                    b.finish()
                };
                let a = fresh.execute(&build(pattern.clone())).unwrap_or_else(|e| {
                    panic!("{} {semantics:?} {strategy:?}: fresh: {e}", query.display())
                });
                let b = snapped
                    .execute(&build(pattern.clone()))
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} {semantics:?} {strategy:?}: snapshot: {e}",
                            query.display()
                        )
                    });
                assert_eq!(
                    normalize(&a.answer, &pattern),
                    normalize(&b.answer, &pattern),
                    "{} under {semantics:?} {strategy:?}",
                    query.display()
                );
                // The snapshot path must actually use the bounded tier when
                // the fresh path does — same strategy choice, same plan.
                assert_eq!(
                    a.strategy,
                    b.strategy,
                    "{} under {semantics:?} {strategy:?}: strategy diverged",
                    query.display()
                );
            }
        }
    }
}

/// The snapshot reader autodetects by magic bytes: the same parity holds
/// when the snapshot file has a misleading extension.
#[test]
fn parity_survives_misleading_extensions() {
    let (dataset, query) = checked_in().remove(0);
    let (graph, _) = load_dataset(&dataset, None, "node").unwrap();
    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    let indices = AccessIndexSet::build(&graph, &schema);

    let dir = std::env::temp_dir().join("bgpq_snapshot_parity");
    std::fs::create_dir_all(&dir).unwrap();
    // A `.tsv` name must not trick the loader into text parsing.
    let disguised = dir.join("disguised.tsv");
    let mut bytes = Vec::new();
    write_snapshot(&graph, &indices, &mut bytes).unwrap();
    std::fs::write(&disguised, &bytes).unwrap();

    let (loaded, format) = load_dataset(&disguised, None, "node").unwrap();
    assert_eq!(format, Format::Snapshot, "magic bytes win over extension");
    assert_eq!(loaded.node_count(), graph.node_count());
    assert_eq!(loaded.edge_count(), graph.edge_count());

    let text = std::fs::read_to_string(&query).unwrap();
    let pattern = parse_pattern(&text, graph.interner().clone()).unwrap();
    let fresh = Engine::with_indices(graph, indices);
    let snapped = Engine::from_snapshot(read_snapshot(Cursor::new(bytes)).unwrap());
    let request = |p: bgpq_pattern::Pattern| QueryRequest::build(p).finish();
    let a = fresh.execute(&request(pattern.clone())).unwrap();
    let b = snapped.execute(&request(pattern.clone())).unwrap();
    assert_eq!(
        normalize(&a.answer, &pattern),
        normalize(&b.answer, &pattern)
    );
    std::fs::remove_file(disguised).ok();
}
