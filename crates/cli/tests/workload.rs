//! Property suite for the schema-aware workload generator, driven across
//! many seeds and through the same manifest text `bgpq workload` emits:
//! every pattern must parse back, every boundedness flag must agree with
//! the planner, the distribution knobs must hit their targets in
//! aggregate, and the whole artifact must be byte-deterministic in the
//! seed — end-to-end through the binary included.

use bgpq_engine::{discover_schema, parse_pattern, plan_query, DiscoveryConfig};
use bgpq_workload::{
    generate_workload, parse_manifest, stream_graph, Scenario, ScenarioConfig, Workload,
    WorkloadConfig,
};
use std::path::{Path, PathBuf};
use std::process::Command;

const SEEDS: u64 = 50;

/// One skewed social graph shared by every seed: small enough for debug
/// builds, with the curated hub tier (`domain`) that makes bounded chains
/// exist and enough bulk that unbounded labels exist too.
fn fixture() -> (bgpq_engine::Graph, bgpq_engine::AccessSchema) {
    let config = ScenarioConfig {
        domain: Some(8),
        ..ScenarioConfig::new(2_000, 11)
    };
    let graph = stream_graph(Scenario::Social, &config);
    let schema = discover_schema(&graph, &DiscoveryConfig::simple());
    (graph, schema)
}

fn config_for(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        queries: 8,
        seed,
        bounded_fraction: 0.5,
        shape_weights: [2, 1, 0, 1],
        ..WorkloadConfig::default()
    }
}

fn workload_for(
    graph: &bgpq_engine::Graph,
    schema: &bgpq_engine::AccessSchema,
    seed: u64,
) -> Workload {
    generate_workload(graph, schema, &config_for(seed)).expect("fixture generates every seed")
}

/// The core contract, re-verified externally through the manifest text:
/// every emitted pattern parses back, and the planner agrees with the
/// `bounded` flag — `Ok` for bounded, `Err` for unbounded — for 50 seeds.
#[test]
fn every_manifest_query_parses_and_plans_as_flagged_across_seeds() {
    let (graph, schema) = fixture();
    for seed in 0..SEEDS {
        let workload = workload_for(&graph, &schema, seed);
        let parsed = parse_manifest(&workload.to_manifest()).expect("manifest round-trips");
        assert_eq!(parsed.len(), 8, "seed {seed}");
        for q in &parsed {
            let pattern = parse_pattern(&q.pattern, graph.interner().clone())
                .unwrap_or_else(|e| panic!("seed {seed} q{}: {e}: {}", q.index, q.pattern));
            let plan = plan_query(&pattern, &schema, q.semantics);
            assert_eq!(
                plan.is_ok(),
                q.bounded,
                "seed {seed} q{}: planner disagrees with flag for {}",
                q.index,
                q.pattern
            );
        }
    }
}

/// Distribution targets hold: the bounded split is exact per workload, and
/// in aggregate over 400 draws the shape mix tracks the 2:1:0:1 weights,
/// sizes stay inside [min, max], and achieved selectivity centers on the
/// 0.5 target.
#[test]
fn distribution_knobs_hit_their_targets_in_aggregate() {
    let (graph, schema) = fixture();
    let mut shapes = [0usize; 4];
    let mut achieved = Vec::new();
    for seed in 0..SEEDS {
        let workload = workload_for(&graph, &schema, seed);
        // bounded_fraction 0.5 of 8 queries: exactly 4, every seed.
        assert_eq!(workload.bounded_count(), 4, "seed {seed}");
        let counts = workload.shape_counts();
        for (total, n) in shapes.iter_mut().zip(counts) {
            *total += n;
        }
        for q in &workload.queries {
            let config = config_for(seed);
            assert!(
                (2..=config.max_nodes).contains(&q.pattern.node_count()),
                "seed {seed} q{}: {} nodes outside [2, {}]",
                q.index,
                q.pattern.node_count(),
                config.max_nodes
            );
            achieved.extend(q.selectivity_achieved);
        }
    }
    let [chains, stars, cycles, trees] = shapes;
    let total = chains + stars + cycles + trees;
    assert_eq!(total, (SEEDS as usize) * 8);
    assert_eq!(cycles, 0, "zero-weight shape must never be drawn");
    // Expectations: chain 200, star 100, tree 100 over 400 draws. A ±50%
    // band is loose enough for 400 Bernoulli draws, tight enough to catch
    // an ignored or inverted weight.
    assert!((100..=300).contains(&chains), "chains {chains} of {total}");
    assert!((50..=150).contains(&stars), "stars {stars} of {total}");
    assert!((50..=150).contains(&trees), "trees {trees} of {total}");
    assert!(!achieved.is_empty(), "predicated roots exist");
    let mean = achieved.iter().sum::<f64>() / achieved.len() as f64;
    assert!(
        (0.3..=0.7).contains(&mean),
        "achieved selectivity mean {mean:.3} drifted from the 0.5 target"
    );
}

/// Identical seeds produce byte-identical manifests; distinct seeds
/// produce distinct ones (the knob actually reaches the RNG).
#[test]
fn manifests_are_byte_deterministic_in_the_seed() {
    let (graph, schema) = fixture();
    let mut manifests = Vec::new();
    for seed in 0..SEEDS {
        let a = workload_for(&graph, &schema, seed).to_manifest();
        let b = workload_for(&graph, &schema, seed).to_manifest();
        assert_eq!(a, b, "seed {seed}: same seed must be byte-identical");
        manifests.push(a);
    }
    manifests.sort();
    manifests.dedup();
    assert!(
        manifests.len() > 1,
        "50 distinct seeds collapsed to one manifest"
    );
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn bgpq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bgpq"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs")
}

/// The same determinism holds end-to-end through the binary: two
/// `bgpq workload` runs with one seed write byte-identical manifest files,
/// and `bgpq query --workload` consumes the result against a snapshot
/// compiled from the same generated graph.
#[test]
fn workload_command_is_deterministic_and_feeds_query() {
    let dir = std::env::temp_dir().join("bgpq_workload_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    // One seed pins the generated graph for workload and compile alike, so
    // the manifest's boundedness flags hold on the compiled snapshot.
    let gen_args = [
        "--gen", "social", "--scale", "500", "--domain", "8", "--seed", "42", "--simple",
    ];
    let manifest = |name: &str| {
        let path = dir.join(name);
        let mut args = vec!["workload"];
        args.extend_from_slice(&gen_args);
        let path_str = path.to_str().unwrap().to_string();
        let out = bgpq(
            &args
                .iter()
                .copied()
                .chain(["--queries", "6", "--out", &path_str])
                .collect::<Vec<_>>(),
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        path
    };
    let a = std::fs::read(manifest("a.jsonl")).unwrap();
    let b = std::fs::read(manifest("b.jsonl")).unwrap();
    assert_eq!(a, b, "same-seed workload runs must write identical bytes");

    let snap = dir.join("fixture.bgpq");
    let snap_str = snap.to_str().unwrap().to_string();
    let mut compile = vec!["compile"];
    compile.extend_from_slice(&gen_args);
    compile.extend_from_slice(&["--out", &snap_str]);
    let out = bgpq(&compile);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let manifest_path = dir.join("a.jsonl");
    let out = bgpq(&[
        "query",
        "--snapshot",
        &snap_str,
        "--workload",
        manifest_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("workload"), "{stdout}");
    assert!(stdout.contains("6 queries"), "{stdout}");
    assert!(stdout.contains("latency: p50"), "{stdout}");
}
