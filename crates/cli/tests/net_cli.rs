//! End-to-end network parity: `bgpq serve` + `bgpq client` against
//! `bgpq query`.
//!
//! For every checked-in scenario dataset and pattern, under both
//! semantics, the answer printed by `bgpq client` (pattern text → TCP →
//! admission gate → worker pool → streamed frames → shared renderer) must
//! be byte-identical to `bgpq query` evaluating the same compiled snapshot
//! locally — the `strategy:`/`answer:`/`bound:` block and the explain
//! lines, everything except the timing line. Plus the operational paths:
//! a zero-capacity server rejects with `overloaded`, and `--drain-after-ms`
//! exits with the drain report.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn repo_root() -> PathBuf {
    // crates/cli -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn bgpq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bgpq"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs")
}

fn stdout_of(args: &[&str]) -> String {
    let output = bgpq(args);
    assert!(
        output.status.success(),
        "bgpq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bgpq_net_cli");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A `bgpq serve` child process, killed on drop. The bound address comes
/// from its `listening on` line (`--port 0` picks a free port).
struct ServeChild {
    child: Child,
    addr: String,
}

impl ServeChild {
    fn spawn(extra: &[&str]) -> ServeChild {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bgpq"))
            .arg("serve")
            .args(extra)
            .args(["--port", "0"])
            .current_dir(repo_root())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut addr = None;
        for line in BufReader::new(stdout).lines() {
            let line = line.expect("serve stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                addr = rest.split_whitespace().next().map(str::to_string);
                break;
            }
        }
        ServeChild {
            child,
            addr: addr.expect("serve printed its address"),
        }
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The deterministic slice of a query report: everything from the
/// `strategy:` line on, minus the timing (`stats:`) line and, for the
/// client, its connection banner.
fn parity_block(report: &str) -> String {
    report
        .lines()
        .skip_while(|l| !l.starts_with("strategy:"))
        .filter(|l| !l.starts_with("stats:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn client_answers_are_byte_identical_to_local_queries() {
    let scenarios = [
        ("data/social.tsv", "data/queries/social.pat", "social"),
        (
            "data/citation.jsonl",
            "data/queries/citation.pat",
            "citation",
        ),
        (
            "data/products.jsonl",
            "data/queries/products.pat",
            "products",
        ),
    ];
    for (dataset, pattern, name) in scenarios {
        // One compiled snapshot feeds both sides, so schema discovery
        // cannot diverge between the server and the local run.
        let snap = temp_path(&format!("{name}.bgpq"));
        let snap = snap.to_str().unwrap();
        stdout_of(&["compile", dataset, "--out", snap]);
        let serve = ServeChild::spawn(&["--snapshot", snap]);

        for semantics in ["iso", "sim"] {
            let local = stdout_of(&[
                "query",
                "--snapshot",
                snap,
                "--pattern",
                pattern,
                "--semantics",
                semantics,
                "--explain",
            ]);
            let remote = stdout_of(&[
                "client",
                "--addr",
                &serve.addr,
                "--pattern",
                pattern,
                "--semantics",
                semantics,
                "--explain",
            ]);
            let (local_block, remote_block) = (parity_block(&local), parity_block(&remote));
            assert!(
                local_block.contains("answer:"),
                "{name}/{semantics}: no answer in {local}"
            );
            assert_eq!(
                remote_block, local_block,
                "{name}/{semantics}: TCP answer diverged from local query"
            );
        }
    }
}

#[test]
fn forced_strategies_and_show_limits_also_match() {
    let snap = temp_path("strategies.bgpq");
    let snap = snap.to_str().unwrap();
    stdout_of(&["compile", "data/social.tsv", "--out", snap]);
    let serve = ServeChild::spawn(&["--snapshot", snap]);

    for strategy in ["bounded", "seeded", "baseline"] {
        let local = stdout_of(&[
            "query",
            "--snapshot",
            snap,
            "--pattern",
            "data/queries/social.pat",
            "--strategy",
            strategy,
            "--show",
            "3",
        ]);
        let remote = stdout_of(&[
            "client",
            "--addr",
            &serve.addr,
            "--pattern",
            "data/queries/social.pat",
            "--strategy",
            strategy,
            "--show",
            "3",
        ]);
        assert_eq!(
            parity_block(&remote),
            parity_block(&local),
            "strategy {strategy} diverged over TCP"
        );
    }
}

#[test]
fn zero_capacity_server_rejects_with_overloaded() {
    let serve = ServeChild::spawn(&[
        "data/social.tsv",
        "--schema",
        "data/social.schema",
        "--max-in-flight",
        "0",
    ]);
    let output = bgpq(&[
        "client",
        "--addr",
        &serve.addr,
        "--pattern",
        "data/queries/social.pat",
    ]);
    assert!(
        !output.status.success(),
        "a rejected query must fail the client"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("overloaded") && stderr.contains("retry after"),
        "expected a typed overloaded rejection, got: {stderr}"
    );

    // The session survives rejections: a ping on the same server works.
    let ping = stdout_of(&["client", "--addr", &serve.addr, "--ping"]);
    assert!(ping.contains("pong: epoch 0"), "{ping}");
}

#[test]
fn drain_after_ms_exits_with_a_drain_report() {
    let output = bgpq(&[
        "serve",
        "data/social.tsv",
        "--schema",
        "data/social.schema",
        "--port",
        "0",
        "--drain-after-ms",
        "300",
    ]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("listening on "), "{stdout}");
    assert!(stdout.contains("drained cleanly: admitted 0"), "{stdout}");
}
