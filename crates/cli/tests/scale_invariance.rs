//! Scale-invariance regression: the paper's headline claim, as a test.
//!
//! The same seed-pinned bounded workload runs against the same skewed
//! social scenario at two scales a decade apart. The graph grows ~10x;
//! the average fragment `|G_Q|` the bounded strategy fetches must stay in
//! a constant band, because the plan — not the graph — sizes it. A
//! nightly `--ignored` smoke streams the full million-node scenario to
//! verify the generator holds its contiguous-id contract at that size.

use bgpq_engine::{
    discover_schema, AccessIndexSet, DiscoveryConfig, Engine, QueryRequest, Semantics, StrategyKind,
};
use bgpq_workload::{
    generate_with, generate_workload, stream_graph, Record, Scenario, ScenarioConfig,
    WorkloadConfig,
};

/// The engine bench's skewed scaling scenario, pinned to one seed.
fn scaling_scenario(scale: usize) -> ScenarioConfig {
    ScenarioConfig {
        zipf: Some(1.1),
        hot_fraction: Some(0.5),
        domain: Some(50),
        ..ScenarioConfig::new(scale, 7)
    }
}

/// avg `|G_Q|` (fragment nodes per bounded run) and `|G|` at one scale.
fn measure(scale: usize) -> (f64, usize) {
    let graph = stream_graph(Scenario::Social, &scaling_scenario(scale));
    let schema = discover_schema(&graph, &DiscoveryConfig::simple());
    // Uncapped: a truncated index would make the engine's filtered planner
    // refuse queries the generator certified bounded against the schema.
    let indices = AccessIndexSet::build_with_cap(&graph, &schema, usize::MAX);
    let config = WorkloadConfig {
        queries: 8,
        seed: 0x1CDE_2015,
        bounded_fraction: 1.0,
        selectivity: Some(0.5),
        min_nodes: 3,
        max_nodes: 5,
        semantics: Semantics::Isomorphism,
        shape_weights: [2, 1, 0, 1],
    };
    let workload = generate_workload(&graph, &schema, &config).expect("bounded workload generates");
    let nodes = graph.live_node_count();
    let engine = Engine::with_indices(graph, indices);
    let (mut fragment_nodes, mut runs) = (0u64, 0u64);
    for q in &workload.queries {
        let request = QueryRequest::build(q.pattern.clone())
            .strategy(StrategyKind::Bounded)
            .finish();
        let response = engine.execute(&request).expect("certified bounded");
        let fetch = response.stats.fetch.as_ref().expect("bounded runs fetch");
        fragment_nodes += fetch.fragment_nodes as u64;
        runs += 1;
    }
    (fragment_nodes as f64 / runs as f64, nodes)
}

/// `|G|` grows 10x, avg `|G_Q|` stays put. Debug builds use a smaller
/// decade so the test stays CI-sized either way.
#[test]
fn fragment_size_is_scale_invariant_across_a_decade() {
    let scales: [usize; 2] = if cfg!(debug_assertions) {
        [2_000, 20_000]
    } else {
        [10_000, 100_000]
    };
    let (small_frag, small_nodes) = measure(scales[0]);
    let (large_frag, large_nodes) = measure(scales[1]);
    let graph_growth = large_nodes as f64 / small_nodes as f64;
    assert!(
        graph_growth > 3.0,
        "scenario stopped scaling: |G| {small_nodes} -> {large_nodes}"
    );
    let fragment_growth = large_frag / small_frag.max(1.0);
    assert!(
        (0.5..=2.0).contains(&fragment_growth),
        "avg |G_Q| {small_frag:.1} -> {large_frag:.1} ({fragment_growth:.2}x) left the \
         constant band while |G| grew {graph_growth:.1}x"
    );
}

/// Nightly smoke: stream the million-node skewed scenario end to end and
/// check the sink contract the loaders rely on — node ids contiguous from
/// zero, every edge endpoint already emitted. Run with `--ignored`.
#[test]
#[ignore = "million-node stream; run nightly via cargo test -- --ignored"]
fn million_node_stream_keeps_ids_contiguous() {
    let config = scaling_scenario(1_000_000);
    let mut next_id = 0u64;
    let mut edges = 0u64;
    generate_with(Scenario::Social, &config, |record| match record {
        Record::Node { id, .. } => {
            assert_eq!(id, next_id, "node ids must be contiguous from 0");
            next_id += 1;
        }
        Record::Edge { src, dst, .. } => {
            assert!(src < next_id && dst < next_id, "edge before its endpoints");
            edges += 1;
        }
    });
    assert!(
        next_id > 1_000_000,
        "scenario under-emitted: {next_id} nodes"
    );
    assert!(edges > 1_000_000, "scenario under-emitted: {edges} edges");
}
