//! Benchmark-harness layer for the bgpq workspace.
//!
//! The paper's headline claim — the fragment `G_Q` an effectively bounded
//! query touches depends on the query and the access schema, never on `|G|`
//! — is only worth anything if it is *measured*: on big skewed graphs, under
//! open-loop load, with percentiles instead of averages. This crate gathers
//! the machinery every measuring harness in the workspace shares, below the
//! engine so benches, the CLI and the network layer can all reuse it:
//!
//! * [`scenario`] — the three synthetic dataset generators (social,
//!   citation, product catalog), streaming one [`scenario::Record`] at a
//!   time so `--scale 1000000` runs in constant memory, with skew knobs:
//!   zipfian hub degrees, hot-label concentration and a configurable value
//!   domain that also plants small curated hub tiers (the access-schema
//!   anchors bounded plans hang off).
//! * [`stream`] — [`stream::GraphSink`], which feeds a record stream
//!   straight into a [`bgpq_graph::GraphBuilder`] without buffering, plus
//!   counting so tests can assert the streaming path is actually used.
//! * [`query`] — the parameterized query-workload generator: chain / star /
//!   cycle / tree patterns derived from a discovered access schema, with a
//!   bounded/unbounded mix and predicate-selectivity targets, all
//!   deterministic in a seed.
//! * [`histogram`] — the log-bucketed [`LatencyHistogram`] (moved here from
//!   `bgpq-net` so the engine bench can use it without a dependency cycle).
//! * [`clock`] — the fixed-interval [`ArrivalClock`] that open-loop benches
//!   schedule requests with, immune to coordinated omission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod query;
pub mod scenario;
pub mod stream;

pub use clock::ArrivalClock;
pub use histogram::LatencyHistogram;
pub use query::{
    generate_workload, parse_manifest, GeneratedQuery, ManifestQuery, Shape, Workload,
    WorkloadConfig, WorkloadError,
};
pub use scenario::{generate, generate_with, Dataset, Record, Scenario, ScenarioConfig};
pub use stream::{stream_graph, stream_graph_counted, GraphSink};
