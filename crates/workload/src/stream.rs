//! Streaming construction of a [`Graph`] from a scenario record stream.
//!
//! `bgpq compile --gen` and the scale benches need a million-node graph
//! without first buffering a million-record `Vec` — the exact failure mode
//! the peak-memory audit guards against. [`GraphSink`] consumes records one
//! at a time, relying on two invariants every generator upholds (and this
//! sink asserts):
//!
//! * node ids are contiguous from 0 in emission order, so external ids map
//!   to [`NodeId`]s without a hash map, and
//! * every node is emitted before any edge referencing it, so edges can be
//!   added immediately.
//!
//! The sink also counts the records it saw, which lets tests prove the
//! streaming path was actually used: a path that buffered and replayed
//! would still produce the same graph, but only the sink's counter reflects
//! one-at-a-time consumption of the generator closure.

use crate::scenario::{generate_with, Record, Scenario, ScenarioConfig};
use bgpq_graph::{Graph, GraphBuilder, NodeId};

/// A streaming consumer that feeds records straight into a
/// [`GraphBuilder`] (see the module docs).
#[derive(Debug)]
pub struct GraphSink {
    builder: GraphBuilder,
    nodes: u64,
    edges: u64,
}

impl Default for GraphSink {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphSink {
    /// An empty sink.
    pub fn new() -> Self {
        GraphSink {
            builder: GraphBuilder::new(),
            nodes: 0,
            edges: 0,
        }
    }

    /// Consumes one record.
    ///
    /// # Panics
    /// Panics when a node record's external id is not the next contiguous
    /// id, or an edge references a node not yet emitted — both would mean a
    /// generator broke the streaming contract.
    pub fn push(&mut self, record: Record) {
        match record {
            Record::Node { id, label, value } => {
                assert_eq!(
                    id, self.nodes,
                    "generator emitted non-contiguous node id {id} (expected {})",
                    self.nodes
                );
                self.builder.add_node(label, value);
                self.nodes += 1;
            }
            Record::Edge { src, dst } => {
                assert!(
                    src < self.nodes && dst < self.nodes,
                    "edge ({src}, {dst}) references a node past {}",
                    self.nodes
                );
                self.builder
                    .add_edge(NodeId(src as u32), NodeId(dst as u32))
                    .expect("streamed endpoints exist");
                self.edges += 1;
            }
        }
    }

    /// Total records consumed so far — the counter audit tests assert on.
    pub fn records_seen(&self) -> u64 {
        self.nodes + self.edges
    }

    /// Node records consumed so far.
    pub fn node_records(&self) -> u64 {
        self.nodes
    }

    /// Edge records consumed so far.
    pub fn edge_records(&self) -> u64 {
        self.edges
    }

    /// Finalizes the graph.
    pub fn finish(self) -> Graph {
        self.builder.build()
    }
}

/// Streams `scenario` under `config` directly into a graph — no record
/// buffer, constant memory beyond the graph itself.
pub fn stream_graph(scenario: Scenario, config: &ScenarioConfig) -> Graph {
    stream_graph_counted(scenario, config).0
}

/// Like [`stream_graph`], additionally returning the number of records the
/// streaming sink consumed (for the peak-memory audit assertions).
pub fn stream_graph_counted(scenario: Scenario, config: &ScenarioConfig) -> (Graph, u64) {
    let mut sink = GraphSink::new();
    generate_with(scenario, config, |record| sink.push(record));
    let records = sink.records_seen();
    (sink.finish(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, same_graph};

    #[test]
    fn streamed_graph_matches_buffered_graph() {
        let knobbed = ScenarioConfig {
            zipf: Some(1.3),
            hot_fraction: Some(0.6),
            domain: Some(5),
            ..ScenarioConfig::new(150, 17)
        };
        for config in [ScenarioConfig::new(150, 17), knobbed] {
            for scenario in Scenario::ALL {
                let dataset = generate(scenario, &config);
                let buffered = dataset.build_graph();
                let (streamed, records) = stream_graph_counted(scenario, &config);
                assert_eq!(
                    records,
                    dataset.records().len() as u64,
                    "{scenario} sink consumed a different record count"
                );
                same_graph(&buffered, &streamed)
                    .unwrap_or_else(|e| panic!("{scenario} streamed graph drifted: {e}"));
            }
        }
    }

    #[test]
    fn sink_counts_node_and_edge_records() {
        let config = ScenarioConfig::new(40, 1);
        let mut sink = GraphSink::new();
        generate_with(Scenario::Citation, &config, |r| sink.push(r));
        assert!(sink.node_records() > 0);
        assert!(sink.edge_records() > 0);
        assert_eq!(
            sink.records_seen(),
            sink.node_records() + sink.edge_records()
        );
        let edge_records = sink.edge_records();
        let graph = sink.finish();
        // The builder deduplicates parallel edges, so the graph can hold
        // fewer edges than the stream carried — but exactly as many as the
        // buffered path keeps.
        assert!(graph.edge_count() as u64 <= edge_records);
        let buffered = generate(Scenario::Citation, &config).build_graph();
        assert_eq!(graph.edge_count(), buffered.edge_count());
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn sink_rejects_gapped_ids() {
        let mut sink = GraphSink::new();
        sink.push(Record::Node {
            id: 3,
            label: "user",
            value: bgpq_graph::Value::Null,
        });
    }
}
