//! Built-in scenario generators: diverse synthetic workloads.
//!
//! The paper evaluates bounded evaluation on IMDb, DBpedia and WebBase —
//! graphs with very different label schemas and degree shapes. The three
//! scenarios here reproduce that diversity without shipping gigabytes:
//!
//! * [`Scenario::Social`] — users, posts, tags, cities. Follower edges use
//!   preferential attachment, so user degree is heavily skewed (hubs), while
//!   `user → city` is a functional dependency (bound 1).
//! * [`Scenario::Citation`] — papers (with year values), authors, venues.
//!   Citations only point to older papers (a DAG) with a small uniform
//!   out-degree; `paper → venue` is an FD; venues and years are
//!   low-cardinality labels, the shape type-1 constraints like.
//! * [`Scenario::ProductCatalog`] — products (float prices), brands, a
//!   category tree, customers and reviews (integer ratings). Review
//!   in-degree per product is skewed; `product → brand` and
//!   `review → product` are FDs.
//!
//! A generator emits a flat [`Record`] stream. Both consumption paths share
//! it: [`Dataset::build_graph`] feeds the records straight into a
//! [`GraphBuilder`], while [`Dataset::to_text`] / [`Dataset::to_jsonl`]
//! render the records in the interchange formats that the `bgpq-graph::io`
//! loaders read back. The loader-vs-generator equivalence tests assert the
//! two paths produce identical graphs, so datasets written by `bgpq gen`
//! and graphs built in memory can never drift apart.
//!
//! # Skew knobs
//!
//! Three optional [`ScenarioConfig`] knobs reshape a scenario without
//! touching its label schema. All default to `None`, and with every knob
//! unset the record stream is byte-identical to what earlier releases
//! produced, so checked-in datasets and determinism suites keep passing.
//!
//! * [`zipf`](ScenarioConfig::zipf) — replaces the stock skewed draw
//!   (minimum of three uniforms) with a zipfian draw of the given exponent
//!   `s`: index `k` is picked with probability `∝ (k+1)^-s`. Larger
//!   exponents concentrate follower / authorship / review edges on fewer,
//!   hotter hubs — the degree shape of real social graphs.
//! * [`hot_fraction`](ScenarioConfig::hot_fraction) — sends the given
//!   fraction of domain-label references (cities, tags, venues, brands,
//!   categories) to the first tenth of that label's population, so a few
//!   "hot" values dominate — the value-skew that makes selectivity targets
//!   interesting.
//! * [`domain`](ScenarioConfig::domain) — fixes the cardinality of the
//!   domain labels at `d` (instead of growing them with scale) and bounds
//!   node values to a domain of `20·d` distinct values. It also plants a
//!   small curated hub tier per scenario — `topic` (social), `area`
//!   (citation), `collection` (products) — `d` nodes whose only edges are a
//!   handful of hand-picked references into the large populations. Those
//!   tiers give schema discovery small-bound constraints such as
//!   `(topic) → user ≤ 3`, the anchors from which scale-invariant bounded
//!   query plans hang; without them a million-node graph has no small
//!   constraint path into its large labels and bounded evaluation has
//!   nothing to grab.

use bgpq_graph::io::{format_value, json::json_float_token, json::write_json_string};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use bgpq_pattern::DetRng;
use std::fmt;

/// The built-in dataset scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Social network: skewed follower degrees, `user → city` FD.
    Social,
    /// Citation network: year-ordered citation DAG, `paper → venue` FD.
    Citation,
    /// Product catalog: category tree, float prices, review ratings.
    ProductCatalog,
}

impl Scenario {
    /// All scenarios, in a stable order.
    pub const ALL: [Scenario; 3] = [
        Scenario::Social,
        Scenario::Citation,
        Scenario::ProductCatalog,
    ];

    /// The CLI name of the scenario.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Social => "social",
            Scenario::Citation => "citation",
            Scenario::ProductCatalog => "products",
        }
    }

    /// Resolves a CLI name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// One-line description for `bgpq gen --help`-style listings.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Social => "users/posts/tags/cities; preferential-attachment follower graph",
            Scenario::Citation => "papers/authors/venues; year-ordered citation DAG",
            Scenario::ProductCatalog => {
                "products/brands/categories/customers/reviews; category tree"
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of a scenario generation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The scenario's primary population (users, papers, products). The
    /// other populations are derived from it.
    pub scale: usize,
    /// Seed of the deterministic generator: same seed, same dataset.
    pub seed: u64,
    /// Zipf exponent for hub-degree draws (follower targets, post authors,
    /// review targets). `None` keeps the stock min-of-three-uniforms skew.
    pub zipf: Option<f64>,
    /// Fraction of domain-label references concentrated on the hottest
    /// tenth of the label's population. `None` keeps references uniform.
    pub hot_fraction: Option<f64>,
    /// Fixed cardinality for domain labels plus a curated hub tier (see the
    /// module docs). `None` derives domain cardinalities from `scale` and
    /// plants no hub tier.
    pub domain: Option<usize>,
}

impl ScenarioConfig {
    /// A config with the given scale and seed and every skew knob unset —
    /// the stream such a config generates is byte-identical to what
    /// pre-knob releases produced.
    pub fn new(scale: usize, seed: u64) -> Self {
        ScenarioConfig {
            scale,
            seed,
            zipf: None,
            hot_fraction: None,
            domain: None,
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::new(100, 42)
    }
}

/// One record of a generated dataset, in the vocabulary of the JSONL
/// loader: a labeled, valued node or a directed edge between external ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A node declaration.
    Node {
        /// External id (contiguous from 0 in generated datasets).
        id: u64,
        /// Label name.
        label: &'static str,
        /// Attribute value.
        value: Value,
    },
    /// A directed edge between two declared nodes.
    Edge {
        /// Source external id.
        src: u64,
        /// Destination external id.
        dst: u64,
    },
}

impl Record {
    /// Appends this record's `n`/`e` text line (the shape
    /// `bgpq-graph::io::read_graph` parses) to `out`.
    pub fn render_text(&self, out: &mut String) {
        match self {
            Record::Node { id, label, value } => match format_value(value) {
                None => out.push_str(&format!("n\t{id}\t{label}\n")),
                Some(token) => out.push_str(&format!("n\t{id}\t{label}\t{token}\n")),
            },
            Record::Edge { src, dst } => out.push_str(&format!("e\t{src}\t{dst}\n")),
        }
    }

    /// Appends this record's JSON line (the shape
    /// `bgpq-graph::io::read_jsonl` parses) to `out`.
    pub fn render_jsonl(&self, out: &mut String) {
        match self {
            Record::Node { id, label, value } => {
                out.push_str(&format!("{{\"type\":\"node\",\"id\":{id},\"label\":"));
                write_json_string(out, label);
                match value {
                    Value::Null => {}
                    Value::Bool(b) => out.push_str(&format!(",\"value\":{b}")),
                    Value::Int(i) => out.push_str(&format!(",\"value\":{i}")),
                    Value::Float(x) => {
                        let token =
                            json_float_token(*x).expect("generators only produce finite floats");
                        out.push_str(",\"value\":");
                        out.push_str(&token);
                    }
                    Value::Str(s) => {
                        out.push_str(",\"value\":");
                        write_json_string(out, s);
                    }
                }
                out.push_str("}\n");
            }
            Record::Edge { src, dst } => {
                out.push_str(&format!(
                    "{{\"type\":\"edge\",\"src\":{src},\"dst\":{dst}}}\n"
                ));
            }
        }
    }
}

/// The `# bgpq scenario dataset: ...` comment line text-format outputs
/// start with (loaders skip `#` lines). Knobs appear only when set, so
/// knobless headers are byte-identical to pre-knob releases.
pub fn text_header(scenario: Scenario, config: &ScenarioConfig) -> String {
    let mut knobs = String::new();
    if let Some(z) = config.zipf {
        knobs.push_str(&format!(", zipf {z}"));
    }
    if let Some(h) = config.hot_fraction {
        knobs.push_str(&format!(", hot {h}"));
    }
    if let Some(d) = config.domain {
        knobs.push_str(&format!(", domain {d}"));
    }
    format!(
        "# bgpq scenario dataset: {} (scale {}, seed {}{})\n",
        scenario, config.scale, config.seed, knobs
    )
}

/// A generated dataset: the scenario it came from and its record stream.
#[derive(Debug, Clone)]
pub struct Dataset {
    scenario: Scenario,
    config: ScenarioConfig,
    records: Vec<Record>,
}

impl Dataset {
    /// The scenario this dataset was generated from.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The generation knobs used.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The raw record stream.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Builds the graph directly through [`GraphBuilder`] — the synthetic
    /// path. Node records map to [`NodeId`]s in record order, which is the
    /// same order the loaders assign, so this graph is identical to loading
    /// [`Dataset::to_text`] or [`Dataset::to_jsonl`].
    pub fn build_graph(&self) -> Graph {
        let nodes = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Node { .. }))
            .count();
        let mut builder = GraphBuilder::with_capacity(nodes, self.records.len() - nodes);
        let mut ids: std::collections::HashMap<u64, NodeId> =
            std::collections::HashMap::with_capacity(nodes);
        for record in &self.records {
            match record {
                Record::Node { id, label, value } => {
                    let node = builder.add_node(label, value.clone());
                    ids.insert(*id, node);
                }
                Record::Edge { .. } => {}
            }
        }
        let resolve = |external: u64| -> NodeId {
            *ids.get(&external)
                .expect("generated edges reference generated nodes")
        };
        for record in &self.records {
            if let Record::Edge { src, dst } = record {
                builder
                    .add_edge(resolve(*src), resolve(*dst))
                    .expect("generated endpoints exist");
            }
        }
        builder.build()
    }

    /// Renders the dataset in the `n`/`e` text format (tab-separated), the
    /// shape `bgpq-graph::io::read_graph` parses.
    pub fn to_text(&self) -> String {
        let mut out = text_header(self.scenario, &self.config);
        for record in &self.records {
            record.render_text(&mut out);
        }
        out
    }

    /// Renders the dataset in the JSON-lines format, the shape
    /// `bgpq-graph::io::read_jsonl` parses.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            record.render_jsonl(&mut out);
        }
        out
    }
}

/// Checks that two graphs are identical node for node — same live node
/// count, and per node id the same label name and attribute value, with the
/// same edge set. Returns a description of the first difference. Used by
/// the loader-vs-generator equivalence suite: the graph a loader produces
/// from an emitted dataset must be indistinguishable from the directly
/// built one.
pub fn same_graph(a: &Graph, b: &Graph) -> Result<(), String> {
    if a.live_node_count() != b.live_node_count() {
        return Err(format!(
            "node counts differ: {} vs {}",
            a.live_node_count(),
            b.live_node_count()
        ));
    }
    if a.edge_count() != b.edge_count() {
        return Err(format!(
            "edge counts differ: {} vs {}",
            a.edge_count(),
            b.edge_count()
        ));
    }
    for v in a.nodes().filter(|&v| a.is_live(v)) {
        if !b.is_live(v) {
            return Err(format!("node {} is live on one side only", v.0));
        }
        if a.label_name(v) != b.label_name(v) {
            return Err(format!(
                "labels of node {} differ: {:?} vs {:?}",
                v.0,
                a.label_name(v),
                b.label_name(v)
            ));
        }
        if a.value(v) != b.value(v) {
            return Err(format!(
                "values of node {} differ: {:?} vs {:?}",
                v.0,
                a.value(v),
                b.value(v)
            ));
        }
    }
    let edges = |g: &Graph| -> Vec<(u32, u32)> {
        let mut e: Vec<(u32, u32)> = g.edges().map(|e| (e.src.0, e.dst.0)).collect();
        e.sort_unstable();
        e
    };
    if edges(a) != edges(b) {
        return Err("edge sets differ".into());
    }
    Ok(())
}

/// Generates a dataset for `scenario` under `config`, buffering the record
/// stream. Fully deterministic: the record stream is a function of
/// `(scenario, config)`.
pub fn generate(scenario: Scenario, config: &ScenarioConfig) -> Dataset {
    let mut records = Vec::new();
    generate_with(scenario, config, |record| records.push(record));
    Dataset {
        scenario,
        config: config.clone(),
        records,
    }
}

/// Streams the record stream of `scenario` under `config` through `emit`,
/// one record at a time and in the exact order [`generate`] buffers them —
/// nothing is retained between calls, so `bgpq gen --scale N` can write
/// arbitrarily large datasets in constant memory. Every node record is
/// emitted before any edge record referencing it, and node ids are
/// contiguous from 0 in emission order; [`crate::stream::GraphSink`] relies
/// on both invariants.
pub fn generate_with<F: FnMut(Record)>(scenario: Scenario, config: &ScenarioConfig, mut emit: F) {
    let mut gen = Generator {
        rng: DetRng::seed_from_u64(config.seed ^ (scenario as u64) << 32),
        emit: &mut emit,
        next_id: 0,
        zipf: config.zipf,
        hot_fraction: config.hot_fraction,
        domain: config.domain,
    };
    match scenario {
        Scenario::Social => gen.social(config.scale.max(2)),
        Scenario::Citation => gen.citation(config.scale.max(2)),
        Scenario::ProductCatalog => gen.product_catalog(config.scale.max(2)),
    }
}

/// Fan-out of every curated `topic → user` reference bundle (social).
pub const TOPIC_USER_REFS: usize = 3;
/// Fan-out of every curated `topic → post` reference bundle (social).
pub const TOPIC_POST_REFS: usize = 2;
/// Fan-out of every curated `area → author` reference bundle (citation).
pub const AREA_AUTHOR_REFS: usize = 2;
/// Fan-out of every curated `area → paper` reference bundle (citation).
pub const AREA_PAPER_REFS: usize = 3;
/// Fan-out of every curated `collection → product` bundle (products).
pub const COLLECTION_PRODUCT_REFS: usize = 4;

struct Generator<'a> {
    rng: DetRng,
    emit: &'a mut dyn FnMut(Record),
    next_id: u64,
    zipf: Option<f64>,
    hot_fraction: Option<f64>,
    domain: Option<usize>,
}

impl Generator<'_> {
    fn node(&mut self, label: &'static str, value: Value) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        (self.emit)(Record::Node { id, label, value });
        id
    }

    fn edge(&mut self, src: u64, dst: u64) {
        (self.emit)(Record::Edge { src, dst });
    }

    /// A hub-degree draw over `0..n`, skewed towards small indices. With the
    /// `zipf` knob unset this is the stock minimum of three uniform draws
    /// (density `∝ (1 - x)²`), the cheap stand-in for preferential
    /// attachment; with `zipf = Some(s)` it is a zipfian draw of exponent
    /// `s` via the inverse CDF of the continuous power law on `[1, n]`.
    fn skewed(&mut self, n: usize) -> usize {
        match self.zipf {
            None => self
                .rng
                .random_range(0..n)
                .min(self.rng.random_range(0..n))
                .min(self.rng.random_range(0..n)),
            Some(s) => {
                let u = self.rng.random_f64();
                let nf = n as f64;
                let x = if (s - 1.0).abs() < 1e-9 {
                    // s = 1: CDF ∝ ln x, inverse n^u.
                    (u * nf.ln()).exp()
                } else {
                    ((nf.powf(1.0 - s) - 1.0) * u + 1.0).powf(1.0 / (1.0 - s))
                };
                (x.floor() as usize).clamp(1, n) - 1
            }
        }
    }

    /// A domain-label reference over `0..n`. With the `hot_fraction` knob
    /// unset this is one uniform draw (byte-identical RNG stream to the
    /// knobless generator); with `hot_fraction = Some(h)` a fraction `h` of
    /// the references lands on the hottest tenth of the population.
    fn domain_pick(&mut self, n: usize) -> usize {
        match self.hot_fraction {
            None => self.rng.random_range(0..n),
            Some(h) => {
                let hot = (n / 10).max(1);
                if self.rng.random_bool(h) {
                    self.rng.random_range(0..hot)
                } else {
                    self.rng.random_range(0..n)
                }
            }
        }
    }

    /// A node value from the configured value domain (identity without the
    /// `domain` knob, `i mod 20·d` with it).
    fn domain_value(&self, i: usize) -> i64 {
        match self.domain {
            None => i as i64,
            Some(d) => (i % (d.max(1) * 20)) as i64,
        }
    }

    /// `k` draws over `0..n`, distinct when feasible (bounded retries keep
    /// streaming O(1) per draw; a duplicate only ever repeats an edge, which
    /// cannot raise a fan-out bound).
    fn distinct_picks(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut picks = Vec::with_capacity(k);
        while picks.len() < k {
            let mut tries = 0;
            loop {
                let p = self.rng.random_range(0..n);
                if !picks.contains(&p) || tries >= 16 {
                    picks.push(p);
                    break;
                }
                tries += 1;
            }
        }
        picks
    }

    fn social(&mut self, users: usize) {
        let (cities, tags) = match self.domain {
            None => ((users / 25).max(3), (users / 10).max(5)),
            Some(d) => (d.max(1), (2 * d).max(1)),
        };
        let posts = users * 2;

        let city_ids: Vec<u64> = (0..cities)
            .map(|i| self.node("city", Value::str(format!("city-{i}"))))
            .collect();
        let tag_ids: Vec<u64> = (0..tags)
            .map(|i| self.node("tag", Value::str(format!("tag-{i}"))))
            .collect();
        let first_user = self.next_id;
        for i in 0..users {
            let value = Value::Int(self.domain_value(i));
            self.node("user", value);
        }
        let first_post = self.next_id;
        for i in 0..posts {
            let value = Value::Int(self.domain_value(i));
            self.node("post", value);
        }
        let user_id = |i: usize| first_user + i as u64;
        let post_id = |i: usize| first_post + i as u64;

        // user → city: everyone lives somewhere, exactly one city (an FD).
        for i in 0..users {
            let c = city_ids[self.domain_pick(cities)];
            self.edge(user_id(i), c);
        }
        // user → user follows, preferentially attached to early users.
        for i in 1..users {
            let follows = 1 + self.rng.random_range(0..=2);
            for _ in 0..follows {
                let target = self.skewed(i);
                self.edge(user_id(i), user_id(target));
            }
        }
        // user → post authorship: hubs author more.
        for i in 0..posts {
            let author = self.skewed(users);
            self.edge(user_id(author), post_id(i));
        }
        // post → tag: one to three tags.
        for i in 0..posts {
            let k = 1 + self.rng.random_range(0..=2);
            for _ in 0..k {
                let t = tag_ids[self.domain_pick(tags)];
                self.edge(post_id(i), t);
            }
        }
        // Curated hub tier: each topic references a handful of users and
        // posts, giving discovery small (topic) → user/post bounds.
        if let Some(d) = self.domain {
            for i in 0..d.max(1) {
                let t = self.node("topic", Value::Int(i as i64));
                for u in self.distinct_picks(users, TOPIC_USER_REFS) {
                    self.edge(t, user_id(u));
                }
                for p in self.distinct_picks(posts, TOPIC_POST_REFS) {
                    self.edge(t, post_id(p));
                }
            }
        }
    }

    fn citation(&mut self, papers: usize) {
        let venues = match self.domain {
            None => (papers / 30).max(4),
            Some(d) => d.max(1),
        };
        let authors = (papers / 2).max(3);

        let venue_ids: Vec<u64> = (0..venues)
            .map(|i| self.node("venue", Value::str(format!("venue-{i}"))))
            .collect();
        let first_author = self.next_id;
        for i in 0..authors {
            let value = Value::Int(self.domain_value(i));
            self.node("author", value);
        }
        let first_paper = self.next_id;
        for i in 0..papers {
            let year = 1980 + (i * 40 / papers) as i64;
            self.node("paper", Value::Int(year));
        }
        let author_id = |i: usize| first_author + i as u64;
        let paper_id = |i: usize| first_paper + i as u64;

        for i in 0..papers {
            let p = paper_id(i);
            // paper → venue: exactly one (an FD).
            let v = venue_ids[self.domain_pick(venues)];
            self.edge(p, v);
            // author → paper: one to three authors.
            let k = 1 + self.rng.random_range(0..=2);
            for _ in 0..k {
                let a = author_id(self.rng.random_range(0..authors));
                self.edge(a, p);
            }
            // paper → paper: cite up to five strictly older papers
            // (uniform, so citation out-degree stays flat — unlike the
            // social scenario's skewed follower degrees).
            if i > 0 {
                let cites = 1 + self.rng.random_range(0..=4.min(i - 1));
                for _ in 0..cites {
                    let older = self.rng.random_range(0..i);
                    self.edge(p, paper_id(older));
                }
            }
        }
        // Curated hub tier: each research area references a couple of
        // authors and papers.
        if let Some(d) = self.domain {
            for i in 0..d.max(1) {
                let area = self.node("area", Value::Int(i as i64));
                for a in self.distinct_picks(authors, AREA_AUTHOR_REFS) {
                    self.edge(area, author_id(a));
                }
                for p in self.distinct_picks(papers, AREA_PAPER_REFS) {
                    self.edge(area, paper_id(p));
                }
            }
        }
    }

    fn product_catalog(&mut self, products: usize) {
        let (brands, categories) = match self.domain {
            None => ((products / 12).max(4), (products / 10).max(6)),
            Some(d) => (d.max(1), (2 * d).max(2)),
        };
        let customers = (products / 2).max(5);
        let reviews = products * 2;

        let brand_ids: Vec<u64> = (0..brands)
            .map(|i| self.node("brand", Value::str(format!("brand-{i}"))))
            .collect();
        let category_ids: Vec<u64> = (0..categories)
            .map(|i| self.node("category", Value::str(format!("category-{i}"))))
            .collect();
        // category → category: a tree, every non-root points at an earlier
        // parent.
        for i in 1..categories {
            let parent = category_ids[self.rng.random_range(0..i)];
            self.edge(category_ids[i], parent);
        }
        let first_product = self.next_id;
        for _ in 0..products {
            let cents = match self.domain {
                None => self.rng.random_range(99..=99_99) as f64,
                // A fixed domain of 20·d distinct price points.
                Some(d) => (self.rng.random_range(0..d.max(1) * 20) * 100 + 99) as f64,
            };
            self.node("product", Value::Float(cents / 100.0));
        }
        let product_id = |i: usize| first_product + i as u64;
        for i in 0..products {
            let p = product_id(i);
            // product → brand: exactly one (an FD).
            let b = brand_ids[self.domain_pick(brands)];
            self.edge(p, b);
            // product → category: one or two.
            let k = 1 + self.rng.random_range(0..=1);
            for _ in 0..k {
                let c = category_ids[self.domain_pick(categories)];
                self.edge(p, c);
            }
        }
        let first_customer = self.next_id;
        for i in 0..customers {
            let value = Value::Int(self.domain_value(i));
            self.node("customer", value);
        }
        let customer_id = |i: usize| first_customer + i as u64;
        for _ in 0..reviews {
            let rating = 1 + self.rng.random_range(0..=4) as i64;
            let r = self.node("review", Value::Int(rating));
            let c = customer_id(self.rng.random_range(0..customers));
            self.edge(c, r);
            // review → product: popular products collect more reviews.
            let p = product_id(self.skewed(products));
            self.edge(r, p);
        }
        // Curated hub tier: each collection references a few products.
        if let Some(d) = self.domain {
            for i in 0..d.max(1) {
                let col = self.node("collection", Value::Int(i as i64));
                for p in self.distinct_picks(products, COLLECTION_PRODUCT_REFS) {
                    self.edge(col, product_id(p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::default();
        for scenario in Scenario::ALL {
            let a = generate(scenario, &config);
            let b = generate(scenario, &config);
            assert_eq!(a.records(), b.records(), "{scenario} not deterministic");
            let other = generate(
                scenario,
                &ScenarioConfig {
                    seed: 7,
                    ..config.clone()
                },
            );
            assert_ne!(a.records(), other.records(), "{scenario} ignores the seed");
        }
    }

    #[test]
    fn knobbed_generation_is_deterministic_and_differs() {
        let base = ScenarioConfig::new(120, 5);
        let knobbed = ScenarioConfig {
            zipf: Some(1.2),
            hot_fraction: Some(0.8),
            domain: Some(7),
            ..base.clone()
        };
        for scenario in Scenario::ALL {
            let a = generate(scenario, &knobbed);
            let b = generate(scenario, &knobbed);
            assert_eq!(a.records(), b.records(), "{scenario} knobs not seed-stable");
            let plain = generate(scenario, &base);
            assert_ne!(a.records(), plain.records(), "{scenario} knobs ignored");
        }
    }

    #[test]
    fn scenarios_have_distinct_label_schemas() {
        let config = ScenarioConfig::new(40, 1);
        let labels = |s: Scenario, c: &ScenarioConfig| -> Vec<String> {
            let g = generate(s, c).build_graph();
            let mut names: Vec<String> = g
                .interner()
                .iter()
                .map(|(_, name)| name.to_string())
                .collect();
            names.sort();
            names
        };
        assert_eq!(
            labels(Scenario::Social, &config),
            ["city", "post", "tag", "user"]
        );
        assert_eq!(
            labels(Scenario::Citation, &config),
            ["author", "paper", "venue"]
        );
        assert_eq!(
            labels(Scenario::ProductCatalog, &config),
            ["brand", "category", "customer", "product", "review"]
        );
        // The domain knob adds exactly the curated hub label.
        let domained = ScenarioConfig {
            domain: Some(4),
            ..config
        };
        assert_eq!(
            labels(Scenario::Social, &domained),
            ["city", "post", "tag", "topic", "user"]
        );
        assert_eq!(
            labels(Scenario::Citation, &domained),
            ["area", "author", "paper", "venue"]
        );
        assert_eq!(
            labels(Scenario::ProductCatalog, &domained),
            [
                "brand",
                "category",
                "collection",
                "customer",
                "product",
                "review"
            ]
        );
    }

    #[test]
    fn social_degrees_are_skewed_citations_are_flat() {
        let config = ScenarioConfig::new(200, 3);
        let social = generate(Scenario::Social, &config).build_graph();
        let user = social.interner().get("user").unwrap();
        let user_degrees: Vec<usize> = social
            .nodes_with_label(user)
            .iter()
            .map(|&v| social.degree(v))
            .collect();
        let max = *user_degrees.iter().max().unwrap();
        let avg = user_degrees.iter().sum::<usize>() as f64 / user_degrees.len() as f64;
        assert!(
            max as f64 > 4.0 * avg,
            "expected hub users: max {max} vs avg {avg:.1}"
        );

        let citation = generate(Scenario::Citation, &config).build_graph();
        let paper = citation.interner().get("paper").unwrap();
        let max_out = citation
            .nodes_with_label(paper)
            .iter()
            .map(|&v| citation.out_degree(v))
            .max()
            .unwrap();
        // One venue edge plus at most five citations.
        assert!(
            max_out <= 6,
            "citation out-degree should stay flat, got {max_out}"
        );
    }

    #[test]
    fn zipf_knob_sharpens_the_hub_skew() {
        // A higher exponent must concentrate more follower mass on the top
        // user than a lower one.
        let top_share = |z: f64| -> f64 {
            let config = ScenarioConfig {
                zipf: Some(z),
                ..ScenarioConfig::new(400, 11)
            };
            let g = generate(Scenario::Social, &config).build_graph();
            let user = g.interner().get("user").unwrap();
            let degrees: Vec<usize> = g
                .nodes_with_label(user)
                .iter()
                .map(|&v| g.degree(v))
                .collect();
            *degrees.iter().max().unwrap() as f64 / degrees.iter().sum::<usize>() as f64
        };
        let flat = top_share(0.5);
        let sharp = top_share(1.6);
        assert!(
            sharp > flat * 1.5,
            "zipf 1.6 top share {sharp:.4} should dwarf zipf 0.5 share {flat:.4}"
        );
    }

    #[test]
    fn hot_fraction_concentrates_domain_references() {
        let hot = ScenarioConfig {
            hot_fraction: Some(0.9),
            ..ScenarioConfig::new(500, 13)
        };
        let cold = ScenarioConfig::new(500, 13);
        let hot_city_share = |c: &ScenarioConfig| -> f64 {
            let g = generate(Scenario::Social, c).build_graph();
            let city = g.interner().get("city").unwrap();
            let mut degrees: Vec<usize> = g
                .nodes_with_label(city)
                .iter()
                .map(|&v| g.degree(v))
                .collect();
            degrees.sort_unstable_by(|a, b| b.cmp(a));
            let top = degrees.len().div_ceil(10).max(1);
            degrees[..top].iter().sum::<usize>() as f64 / degrees.iter().sum::<usize>() as f64
        };
        let concentrated = hot_city_share(&hot);
        let uniform = hot_city_share(&cold);
        assert!(
            concentrated > 0.7 && concentrated > uniform * 2.0,
            "hot tenth share {concentrated:.3} vs uniform {uniform:.3}"
        );
    }

    #[test]
    fn domain_knob_fixes_cardinalities_and_value_domains() {
        for scale in [300usize, 3000] {
            let config = ScenarioConfig {
                domain: Some(5),
                ..ScenarioConfig::new(scale, 21)
            };
            let g = generate(Scenario::Social, &config).build_graph();
            let count = |name: &str| g.label_count(g.interner().get(name).unwrap());
            assert_eq!(count("city"), 5, "scale {scale}");
            assert_eq!(count("tag"), 10, "scale {scale}");
            assert_eq!(count("topic"), 5, "scale {scale}");
            // Values come from a fixed domain of 20·d points.
            let user = g.interner().get("user").unwrap();
            let distinct: std::collections::BTreeSet<_> = g
                .nodes_with_label(user)
                .iter()
                .map(|&v| match g.value(v) {
                    Value::Int(i) => *i,
                    other => panic!("unexpected value {other:?}"),
                })
                .collect();
            assert!(distinct.len() <= 100, "scale {scale}: {}", distinct.len());
        }
    }

    #[test]
    fn curated_tier_bounds_hold() {
        let config = ScenarioConfig {
            domain: Some(6),
            ..ScenarioConfig::new(600, 2)
        };
        let g = generate(Scenario::Social, &config).build_graph();
        let topic = g.interner().get("topic").unwrap();
        let user = g.interner().get("user").unwrap();
        let post = g.interner().get("post").unwrap();
        for &t in g.nodes_with_label(topic) {
            let mut users = 0;
            let mut posts = 0;
            for n in g.neighbors(t) {
                if g.label(n) == user {
                    users += 1;
                } else if g.label(n) == post {
                    posts += 1;
                }
            }
            assert!(users <= TOPIC_USER_REFS, "topic {t:?} has {users} users");
            assert!(posts <= TOPIC_POST_REFS, "topic {t:?} has {posts} posts");
        }
    }

    #[test]
    fn streaming_render_matches_buffered_render() {
        let knobbed = ScenarioConfig {
            zipf: Some(1.1),
            hot_fraction: Some(0.5),
            domain: Some(4),
            ..ScenarioConfig::new(60, 9)
        };
        for config in [ScenarioConfig::new(60, 9), knobbed] {
            for scenario in Scenario::ALL {
                let dataset = generate(scenario, &config);
                let mut text = text_header(scenario, &config);
                let mut jsonl = String::new();
                let mut count = 0usize;
                generate_with(scenario, &config, |record| {
                    record.render_text(&mut text);
                    record.render_jsonl(&mut jsonl);
                    count += 1;
                });
                assert_eq!(count, dataset.records().len(), "{scenario} record count");
                assert_eq!(text, dataset.to_text(), "{scenario} text drifted");
                assert_eq!(jsonl, dataset.to_jsonl(), "{scenario} jsonl drifted");
            }
        }
    }

    #[test]
    fn names_resolve() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }
}
