//! Schema-driven parameterized query workloads.
//!
//! The pattern-level [`bgpq_pattern::WorkloadGenerator`] reproduces the
//! paper's label-random generator; it knows nothing about access schemas,
//! so on a big graph almost none of its output is effectively bounded. The
//! benchmarks in this workspace need the opposite: workloads whose
//! bounded/unbounded mix, shape mix, size range and predicate selectivity
//! are *dials*, so "avg `|G_Q|` across scales" measures the paper's claim
//! instead of generator noise. [`generate_workload`] provides that.
//!
//! The generator walks the *cover graph* of a discovered
//! [`AccessSchema`]: roots are targets of global constraints (populations
//! small enough to enumerate outright), and a directed cover edge
//! `l → l'` exists for every unary constraint `(l) → (l', N)`. Any pattern
//! assembled by walking cover edges from a root is effectively bounded by
//! construction — exactly the coverage-closure argument of the paper — and
//! every emitted query is re-verified through [`plan_query`] rather than
//! trusted. Unbounded queries are built by poisoning a bounded base with a
//! node no constraint path reaches, and verified to be rejected.
//!
//! Pattern *edge directions* are probed from the data graph (a cover edge
//! says "few `l'` per `l`", not which way the data edge points), so
//! generated queries usually have matches instead of vacuously empty
//! fragments.
//!
//! Everything is deterministic in the config seed: same graph, same
//! schema, same config — byte-identical manifest.

use bgpq_access::AccessSchema;
use bgpq_core::{plan_query, Semantics};
use bgpq_graph::io::json::{parse_json, write_json_string, Json};
use bgpq_graph::{Graph, Label, Value};
use bgpq_pattern::{Atom, DetRng, Op, Pattern, PatternBuilder, Predicate};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The topology of a generated pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A directed path through the cover graph.
    Chain,
    /// One root with `n − 1` leaves.
    Star,
    /// A chain plus a closing edge.
    Cycle,
    /// Cover-edge walks branching off any earlier node.
    Tree,
}

impl Shape {
    /// All shapes, in the order of [`WorkloadConfig::shape_weights`].
    pub const ALL: [Shape; 4] = [Shape::Chain, Shape::Star, Shape::Cycle, Shape::Tree];

    /// The manifest name of the shape.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::Star => "star",
            Shape::Cycle => "cycle",
            Shape::Tree => "tree",
        }
    }

    /// Resolves a manifest name.
    pub fn from_name(name: &str) -> Option<Shape> {
        Shape::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dials of a workload generation run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// RNG seed; workloads are fully deterministic given the seed.
    pub seed: u64,
    /// Fraction of queries that must be effectively bounded (the rest are
    /// verified-unbounded).
    pub bounded_fraction: f64,
    /// Target fraction of the root label's nodes its predicate keeps
    /// (`None` attaches no predicates).
    pub selectivity: Option<f64>,
    /// Inclusive lower bound on pattern nodes.
    pub min_nodes: usize,
    /// Inclusive upper bound on pattern nodes.
    pub max_nodes: usize,
    /// Semantics the boundedness verification plans under.
    pub semantics: Semantics,
    /// Relative weights of [`Shape::ALL`] (chain, star, cycle, tree).
    pub shape_weights: [u32; 4],
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 20,
            seed: 0x1CDE_2015,
            bounded_fraction: 1.0,
            selectivity: Some(0.5),
            min_nodes: 3,
            max_nodes: 6,
            semantics: Semantics::Isomorphism,
            shape_weights: [1, 1, 1, 1],
        }
    }
}

/// One generated query with its verification metadata.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Position in the workload.
    pub index: usize,
    /// Requested topology.
    pub shape: Shape,
    /// Whether the query was verified effectively bounded (`true`) or
    /// verified rejected by the planner (`false`).
    pub bounded: bool,
    /// Semantics the verification ran under.
    pub semantics: Semantics,
    /// The pattern itself.
    pub pattern: Pattern,
    /// The pattern in the `bgpq query --pattern` text grammar; parsing it
    /// back yields `pattern`.
    pub text: String,
    /// The selectivity the root predicate aimed for, when predicates are on.
    pub selectivity_target: Option<f64>,
    /// The fraction of root-label nodes the root predicate actually keeps.
    pub selectivity_achieved: Option<f64>,
    /// The planner's fragment-size bound, for bounded queries.
    pub worst_case_nodes: Option<u64>,
}

/// A generated workload: queries plus the manifest rendering.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The generated queries, in manifest order.
    pub queries: Vec<GeneratedQuery>,
}

impl Workload {
    /// Renders the workload as a JSON-lines manifest, one object per query.
    /// Deterministic: same generation inputs, byte-identical manifest.
    pub fn to_manifest(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            out.push_str(&format!(
                "{{\"index\":{},\"shape\":\"{}\",\"semantics\":\"{}\",\"bounded\":{},\
                 \"nodes\":{},\"edges\":{}",
                q.index,
                q.shape,
                semantics_name(q.semantics),
                q.bounded,
                q.pattern.node_count(),
                q.pattern.edge_count(),
            ));
            if let Some(w) = q.worst_case_nodes {
                out.push_str(&format!(",\"worst_case_nodes\":{w}"));
            }
            if let Some(t) = q.selectivity_target {
                out.push_str(&format!(",\"selectivity_target\":{t}"));
            }
            if let Some(a) = q.selectivity_achieved {
                out.push_str(&format!(",\"selectivity_achieved\":{a:.6}"));
            }
            out.push_str(",\"pattern\":");
            write_json_string(&mut out, &q.text);
            out.push_str("}\n");
        }
        out
    }

    /// How many queries of each shape (indexed like [`Shape::ALL`]).
    pub fn shape_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for q in &self.queries {
            let i = Shape::ALL.iter().position(|&s| s == q.shape).unwrap();
            counts[i] += 1;
        }
        counts
    }

    /// How many queries are flagged bounded.
    pub fn bounded_count(&self) -> usize {
        self.queries.iter().filter(|q| q.bounded).count()
    }
}

/// One line of a parsed manifest — enough to re-run the query.
#[derive(Debug, Clone)]
pub struct ManifestQuery {
    /// Position in the workload.
    pub index: usize,
    /// Topology recorded at generation time, when recognized.
    pub shape: Option<Shape>,
    /// Whether the generator verified the query bounded.
    pub bounded: bool,
    /// Semantics recorded at generation time.
    pub semantics: Semantics,
    /// The pattern text.
    pub pattern: String,
}

/// Failure modes of workload generation.
#[derive(Debug)]
pub enum WorkloadError {
    /// The schema has no global constraint whose target label is populated
    /// — no root to hang bounded plans off.
    NoCoveredRoot,
    /// A bounded pattern could not be assembled (cover graph too sparse).
    NoBoundedPattern,
    /// Every label is covered from every attachment point, so no
    /// verified-unbounded pattern exists.
    NoUnboundedPattern,
    /// A manifest line failed to parse.
    Manifest(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoCoveredRoot => write!(
                f,
                "the access schema has no populated globally-bounded label to root queries at"
            ),
            WorkloadError::NoBoundedPattern => write!(
                f,
                "no effectively bounded pattern could be assembled from the schema's cover graph"
            ),
            WorkloadError::NoUnboundedPattern => write!(
                f,
                "every candidate pattern is covered by the schema; no unbounded query exists"
            ),
            WorkloadError::Manifest(e) => write!(f, "bad workload manifest: {e}"),
        }
    }
}

impl Error for WorkloadError {}

fn semantics_name(s: Semantics) -> &'static str {
    match s {
        Semantics::Isomorphism => "isomorphism",
        Semantics::Simulation => "simulation",
    }
}

/// Renders `pattern` in the `bgpq query --pattern` text grammar with
/// `u{i}` node names. [`bgpq_pattern::parse_pattern`] on the result reproduces the
/// pattern node for node and edge for edge.
pub fn render_pattern_text(pattern: &Pattern) -> String {
    let mut out = String::new();
    for u in pattern.nodes() {
        out.push_str(&format!("node u{}: {}", u.index(), pattern.label_name(u)));
        let predicate = pattern.predicate(u);
        if !predicate.is_empty() {
            out.push_str(" where ");
            let parts: Vec<String> = predicate
                .atoms()
                .iter()
                .map(|a| format!("value {} {}", a.op, render_literal(&a.constant)))
                .collect();
            out.push_str(&parts.join(" && "));
        }
        out.push('\n');
    }
    for (s, d) in pattern.edges() {
        out.push_str(&format!("edge u{} -> u{}\n", s.index(), d.index()));
    }
    out
}

fn render_literal(value: &Value) -> String {
    match value {
        Value::Null => "\"\"".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            let mut token = format!("{x}");
            // A bare integral token would re-parse as Int; keep it a float.
            if !token.contains(['.', 'e', 'E']) {
                token.push_str(".0");
            }
            token
        }
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
    }
}

/// Parses a JSON-lines manifest produced by [`Workload::to_manifest`].
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestQuery>, WorkloadError> {
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let json = parse_json(line)
            .map_err(|e| WorkloadError::Manifest(format!("line {}: {e}", lineno + 1)))?;
        let field = |name: &str| -> Result<Json, WorkloadError> {
            json.get(name).cloned().ok_or_else(|| {
                WorkloadError::Manifest(format!("line {}: missing {name}", lineno + 1))
            })
        };
        let semantics = match field("semantics")?.as_str() {
            Some("simulation") => Semantics::Simulation,
            Some("isomorphism") => Semantics::Isomorphism,
            other => {
                return Err(WorkloadError::Manifest(format!(
                    "line {}: bad semantics {other:?}",
                    lineno + 1
                )))
            }
        };
        queries.push(ManifestQuery {
            index: field("index")?.as_u64().unwrap_or(0) as usize,
            shape: field("shape")?.as_str().and_then(Shape::from_name),
            bounded: field("bounded")?.as_bool().unwrap_or(false),
            semantics,
            pattern: field("pattern")?
                .as_str()
                .ok_or_else(|| {
                    WorkloadError::Manifest(format!("line {}: pattern not a string", lineno + 1))
                })?
                .to_string(),
        });
    }
    Ok(queries)
}

/// The label-level cover graph of a schema (see the module docs), plus the
/// data-probed edge directions the builder consults.
struct CoverModel {
    /// Targets of global constraints, populated in the graph; sorted.
    roots: Vec<Label>,
    /// `l → targets` for every unary constraint `(l) → target`; targets
    /// sorted and deduplicated.
    cover_from: BTreeMap<Label, Vec<Label>>,
    /// Probed data-edge directions: `Some(true)` when edges run `a → b` in
    /// the data, `Some(false)` for `b → a`, `None` when no adjacency was
    /// observed in the sample.
    directions: BTreeMap<(Label, Label), Option<bool>>,
}

impl CoverModel {
    fn build(graph: &Graph, schema: &AccessSchema) -> Self {
        let populated = |l: Label| graph.label_count(l) > 0;
        let mut roots: Vec<Label> = schema
            .iter()
            .filter(|c| c.is_global() && populated(c.target()))
            .map(|c| c.target())
            .collect();
        roots.sort_unstable();
        roots.dedup();
        let mut cover_from: BTreeMap<Label, Vec<Label>> = BTreeMap::new();
        for c in schema.iter() {
            if let [source] = c.source() {
                if *source != c.target() && populated(*source) && populated(c.target()) {
                    cover_from.entry(*source).or_default().push(c.target());
                }
            }
        }
        for targets in cover_from.values_mut() {
            targets.sort_unstable();
            targets.dedup();
        }
        CoverModel {
            roots,
            cover_from,
            directions: BTreeMap::new(),
        }
    }

    /// The cover successors of `l` that have an observed data adjacency.
    fn usable_from(&mut self, graph: &Graph, l: Label) -> Vec<Label> {
        let targets = self.cover_from.get(&l).cloned().unwrap_or_default();
        targets
            .into_iter()
            .filter(|&t| self.direction(graph, l, t).is_some())
            .collect()
    }

    /// Probes (and caches) which way data edges between labels `a` and `b`
    /// point, sampling at most 64 `a`-nodes.
    fn direction(&mut self, graph: &Graph, a: Label, b: Label) -> Option<bool> {
        if let Some(&cached) = self.directions.get(&(a, b)) {
            return cached;
        }
        let mut found = None;
        'outer: for &v in graph.nodes_with_label(a).iter().take(64) {
            for &w in graph.out_neighbors(v) {
                if graph.label(w) == b {
                    found = Some(true);
                    break 'outer;
                }
            }
            for &w in graph.in_neighbors(v) {
                if graph.label(w) == b {
                    found = Some(false);
                    break 'outer;
                }
            }
        }
        self.directions.insert((a, b), found);
        found
    }
}

/// A pattern under assembly: labels plus directed edges on node indices.
struct Draft {
    labels: Vec<Label>,
    edges: Vec<(usize, usize)>,
}

impl Draft {
    fn into_pattern(self, graph: &Graph, root_predicate: Predicate) -> Pattern {
        let mut builder = PatternBuilder::with_interner(graph.interner().clone());
        for (i, &label) in self.labels.iter().enumerate() {
            let predicate = if i == 0 {
                root_predicate.clone()
            } else {
                Predicate::always()
            };
            builder.node_labeled(label, predicate);
        }
        let ids: Vec<_> = (0..self.labels.len())
            .map(|i| bgpq_pattern::PatternNodeId(i as u32))
            .collect();
        for (s, d) in self.edges {
            builder.edge(ids[s], ids[d]);
        }
        builder.build()
    }
}

/// Generates a parameterized workload over `graph` under `schema` (see the
/// module docs). Every query is verified through [`plan_query`]: bounded
/// queries plan successfully and carry the planner's fragment bound,
/// unbounded queries are rejected by the planner.
pub fn generate_workload(
    graph: &Graph,
    schema: &AccessSchema,
    config: &WorkloadConfig,
) -> Result<Workload, WorkloadError> {
    let mut model = CoverModel::build(graph, schema);
    if model.roots.is_empty() {
        return Err(WorkloadError::NoCoveredRoot);
    }
    let mut rng = DetRng::seed_from_u64(config.seed);
    let bounded_target =
        (config.bounded_fraction.clamp(0.0, 1.0) * config.queries as f64).round() as usize;
    let mut queries = Vec::with_capacity(config.queries);
    for index in 0..config.queries {
        let want_bounded = index < bounded_target;
        let shape = pick_shape(&mut rng, &config.shape_weights);
        let query = if want_bounded {
            generate_bounded(graph, schema, config, &mut model, &mut rng, index, shape)?
        } else {
            generate_unbounded(graph, schema, config, &mut model, &mut rng, index, shape)?
        };
        queries.push(query);
    }
    Ok(Workload { queries })
}

fn pick_shape(rng: &mut DetRng, weights: &[u32; 4]) -> Shape {
    let total: u32 = weights.iter().sum();
    if total == 0 {
        return Shape::Chain;
    }
    let mut roll = rng.random_range(0..total as usize) as u32;
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return Shape::ALL[i];
        }
        roll -= w;
    }
    Shape::Chain
}

fn pick_size(rng: &mut DetRng, config: &WorkloadConfig) -> usize {
    let lo = config.min_nodes.max(2);
    let hi = config.max_nodes.max(lo);
    if lo >= hi {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

/// Assembles a draft of the requested shape by walking cover edges from a
/// root. Returns `None` when the walk starves before reaching two nodes.
fn draft_shape(
    graph: &Graph,
    model: &mut CoverModel,
    rng: &mut DetRng,
    shape: Shape,
    size: usize,
) -> Option<Draft> {
    let root = *rng.choose(&model.roots)?;
    let mut labels = vec![root];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let add_cover_edge = |model: &mut CoverModel,
                          labels: &mut Vec<Label>,
                          edges: &mut Vec<(usize, usize)>,
                          from: usize,
                          to_label: Label| {
        labels.push(to_label);
        let to = labels.len() - 1;
        // The cover edge says "few `to_label` per `labels[from]`"; the
        // pattern edge points the way the data does.
        match model
            .direction(graph, labels[from], to_label)
            .expect("usable_from filtered to observed adjacencies")
        {
            true => edges.push((from, to)),
            false => edges.push((to, from)),
        }
    };
    match shape {
        Shape::Chain | Shape::Cycle => {
            let mut current = 0usize;
            while labels.len() < size {
                let options = model.usable_from(graph, labels[current]);
                let Some(&next) = rng.choose(&options) else {
                    break;
                };
                add_cover_edge(model, &mut labels, &mut edges, current, next);
                current = labels.len() - 1;
            }
            if shape == Shape::Cycle && labels.len() >= 3 {
                // The closing edge only narrows matches; coverage is already
                // established by the chain. Point it along an observed
                // adjacency when one exists, else arbitrarily.
                let last = labels.len() - 1;
                match model.direction(graph, labels[last], labels[0]) {
                    Some(true) => edges.push((last, 0)),
                    Some(false) => edges.push((0, last)),
                    None => {
                        if rng.random_bool(0.5) {
                            edges.push((last, 0));
                        } else {
                            edges.push((0, last));
                        }
                    }
                }
            }
        }
        Shape::Star => {
            let options = model.usable_from(graph, root);
            if options.is_empty() {
                return None;
            }
            for _ in 1..size {
                let &leaf = rng.choose(&options).expect("non-empty");
                add_cover_edge(model, &mut labels, &mut edges, 0, leaf);
            }
        }
        Shape::Tree => {
            let mut tries = 0;
            while labels.len() < size && tries < 4 * size {
                tries += 1;
                let at = rng.random_range(0..labels.len());
                let options = model.usable_from(graph, labels[at]);
                let Some(&next) = rng.choose(&options) else {
                    continue;
                };
                add_cover_edge(model, &mut labels, &mut edges, at, next);
            }
        }
    }
    if labels.len() < 2 {
        return None;
    }
    Some(Draft { labels, edges })
}

/// A `lo ≤ value ≤ hi` predicate over a rank window of the root label's
/// value population, targeting `selectivity`, plus the fraction actually
/// kept.
fn selectivity_predicate(
    graph: &Graph,
    root: Label,
    selectivity: f64,
    rng: &mut DetRng,
) -> Option<(Predicate, f64)> {
    let mut values: Vec<&Value> = graph
        .nodes_with_label(root)
        .iter()
        .map(|&v| graph.value(v))
        .filter(|v| matches!(v, Value::Int(_) | Value::Float(_) | Value::Str(_)))
        .collect();
    if values.is_empty() {
        return None;
    }
    // Mixed-type populations don't window cleanly; keep the majority type.
    let type_key = |v: &Value| match v {
        Value::Int(_) => 0u8,
        Value::Float(_) => 1,
        _ => 2,
    };
    let majority = {
        let mut counts = [0usize; 3];
        for v in &values {
            counts[type_key(v) as usize] += 1;
        }
        (0..3).max_by_key(|&i| counts[i]).unwrap() as u8
    };
    values.retain(|v| type_key(v) == majority);
    values.sort_by(|a, b| a.partial_cmp_value(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    let window = ((selectivity.clamp(0.0, 1.0) * n as f64).round() as usize).clamp(1, n);
    let start = rng.random_range(0..=(n - window));
    let lo = values[start].clone();
    let hi = values[start + window - 1].clone();
    let predicate = Predicate::conjunction(vec![Atom::new(Op::Ge, lo), Atom::new(Op::Le, hi)]);
    let kept = values.iter().filter(|v| predicate.eval(v)).count();
    // Achieved selectivity is over the full label population (ties can push
    // it above the target; that is what the manifest reports).
    let total = graph.nodes_with_label(root).len();
    Some((predicate, kept as f64 / total as f64))
}

#[allow(clippy::too_many_arguments)]
fn finish_query(
    graph: &Graph,
    schema: &AccessSchema,
    config: &WorkloadConfig,
    rng: &mut DetRng,
    index: usize,
    shape: Shape,
    draft: Draft,
    bounded: bool,
) -> Option<GeneratedQuery> {
    let root = draft.labels[0];
    let (predicate, achieved, target) = match config.selectivity {
        None => (Predicate::always(), None, None),
        Some(s) => match selectivity_predicate(graph, root, s, rng) {
            Some((p, a)) => (p, Some(a), Some(s)),
            None => (Predicate::always(), None, None),
        },
    };
    let pattern = draft.into_pattern(graph, predicate);
    let plan = plan_query(&pattern, schema, config.semantics);
    match (bounded, plan) {
        (true, Ok(plan)) => {
            let text = render_pattern_text(&pattern);
            Some(GeneratedQuery {
                index,
                shape,
                bounded: true,
                semantics: config.semantics,
                pattern,
                text,
                selectivity_target: target,
                selectivity_achieved: achieved,
                worst_case_nodes: Some(plan.worst_case_nodes()),
            })
        }
        (false, Err(_)) => {
            let text = render_pattern_text(&pattern);
            Some(GeneratedQuery {
                index,
                shape,
                bounded: false,
                semantics: config.semantics,
                pattern,
                text,
                selectivity_target: target,
                selectivity_achieved: achieved,
                worst_case_nodes: None,
            })
        }
        _ => None,
    }
}

fn generate_bounded(
    graph: &Graph,
    schema: &AccessSchema,
    config: &WorkloadConfig,
    model: &mut CoverModel,
    rng: &mut DetRng,
    index: usize,
    shape: Shape,
) -> Result<GeneratedQuery, WorkloadError> {
    for _ in 0..64 {
        let size = pick_size(rng, config);
        let Some(draft) = draft_shape(graph, model, rng, shape, size) else {
            continue;
        };
        if let Some(q) = finish_query(graph, schema, config, rng, index, shape, draft, true) {
            return Ok(q);
        }
    }
    Err(WorkloadError::NoBoundedPattern)
}

/// Builds an unbounded query: a bounded base poisoned with a node the
/// coverage closure cannot reach, verified rejected by the planner.
fn generate_unbounded(
    graph: &Graph,
    schema: &AccessSchema,
    config: &WorkloadConfig,
    model: &mut CoverModel,
    rng: &mut DetRng,
    index: usize,
    shape: Shape,
) -> Result<GeneratedQuery, WorkloadError> {
    // Candidate poison labels: populated, not globally covered (a global
    // constraint would cover the node wherever it sits).
    let mut poisons: Vec<Label> = graph
        .interner()
        .labels()
        .filter(|&l| graph.label_count(l) > 0 && schema.global_bound(l).is_none())
        .collect();
    poisons.sort_unstable();
    if poisons.is_empty() {
        return Err(WorkloadError::NoUnboundedPattern);
    }
    for _ in 0..64 {
        let size = pick_size(rng, config).saturating_sub(1).max(2);
        let Some(mut draft) = draft_shape(graph, model, rng, shape, size) else {
            continue;
        };
        let &poison = rng.choose(&poisons).expect("non-empty");
        let attach = rng.random_range(0..draft.labels.len());
        draft.labels.push(poison);
        let added = draft.labels.len() - 1;
        // Point the poison edge along the data when possible so the query
        // is still realizable — just not boundedly evaluable.
        match model.direction(graph, draft.labels[attach], poison) {
            Some(true) => draft.edges.push((attach, added)),
            Some(false) | None => draft.edges.push((added, attach)),
        }
        if let Some(q) = finish_query(graph, schema, config, rng, index, shape, draft, false) {
            return Ok(q);
        }
    }
    // Deterministic last resort: random drafting can starve on unlucky
    // seeds. A two-node pattern rooted at a poison is unbounded unless a
    // constraint covers the poison from its single neighbor, so scanning
    // (poison, anchor, direction) in order finds a verified-unbounded
    // pattern whenever one exists at size 2 — realizability is sacrificed,
    // the planner contract is not.
    let mut anchors: Vec<Label> = graph
        .interner()
        .labels()
        .filter(|&l| graph.label_count(l) > 0)
        .collect();
    anchors.sort_unstable();
    for &poison in &poisons {
        for &anchor in &anchors {
            for edges in [vec![(0, 1)], vec![(1, 0)]] {
                let draft = Draft {
                    labels: vec![poison, anchor],
                    edges,
                };
                if let Some(q) =
                    finish_query(graph, schema, config, rng, index, shape, draft, false)
                {
                    return Ok(q);
                }
            }
        }
    }
    Err(WorkloadError::NoUnboundedPattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use crate::stream::stream_graph;
    use bgpq_access::{discover_schema, DiscoveryConfig};
    use bgpq_pattern::parse_pattern;

    fn social_fixture() -> (Graph, AccessSchema) {
        // Scale past the discovery ceiling on global bounds (1000), so the
        // big labels (user, post) are NOT globally covered and verified-
        // unbounded queries exist; the domain knob plants the curated
        // `topic` tier whose small fan-outs root the bounded ones.
        let config = ScenarioConfig {
            domain: Some(8),
            ..ScenarioConfig::new(2000, 3)
        };
        let graph = stream_graph(Scenario::Social, &config);
        let schema = discover_schema(&graph, &DiscoveryConfig::simple());
        (graph, schema)
    }

    #[test]
    fn bounded_workload_plans_and_parses() {
        let (graph, schema) = social_fixture();
        let config = WorkloadConfig {
            queries: 12,
            ..WorkloadConfig::default()
        };
        let workload = generate_workload(&graph, &schema, &config).unwrap();
        assert_eq!(workload.queries.len(), 12);
        for q in &workload.queries {
            assert!(q.bounded);
            assert!(q.worst_case_nodes.unwrap() > 0);
            let reparsed = parse_pattern(&q.text, graph.interner().clone()).unwrap();
            assert_eq!(reparsed.node_count(), q.pattern.node_count(), "{}", q.text);
            assert_eq!(reparsed.edge_count(), q.pattern.edge_count(), "{}", q.text);
            assert!(plan_query(&reparsed, &schema, q.semantics).is_ok());
        }
    }

    #[test]
    fn unbounded_queries_are_rejected_by_the_planner() {
        let (graph, schema) = social_fixture();
        let config = WorkloadConfig {
            queries: 10,
            bounded_fraction: 0.5,
            ..WorkloadConfig::default()
        };
        let workload = generate_workload(&graph, &schema, &config).unwrap();
        assert_eq!(workload.bounded_count(), 5);
        for q in workload.queries.iter().filter(|q| !q.bounded) {
            let reparsed = parse_pattern(&q.text, graph.interner().clone()).unwrap();
            assert!(
                plan_query(&reparsed, &schema, q.semantics).is_err(),
                "unbounded-flagged query planned: {}",
                q.text
            );
        }
    }

    #[test]
    fn manifests_are_deterministic_and_round_trip() {
        let (graph, schema) = social_fixture();
        let config = WorkloadConfig {
            queries: 8,
            bounded_fraction: 0.75,
            ..WorkloadConfig::default()
        };
        let a = generate_workload(&graph, &schema, &config).unwrap();
        let b = generate_workload(&graph, &schema, &config).unwrap();
        assert_eq!(a.to_manifest(), b.to_manifest());
        let parsed = parse_manifest(&a.to_manifest()).unwrap();
        assert_eq!(parsed.len(), 8);
        for (m, q) in parsed.iter().zip(&a.queries) {
            assert_eq!(m.index, q.index);
            assert_eq!(m.bounded, q.bounded);
            assert_eq!(m.shape, Some(q.shape));
            assert_eq!(m.pattern, q.text);
        }
        let other = generate_workload(
            &graph,
            &schema,
            &WorkloadConfig {
                seed: 999,
                ..config
            },
        )
        .unwrap();
        assert_ne!(a.to_manifest(), other.to_manifest());
    }

    #[test]
    fn selectivity_targets_are_respected() {
        let (graph, schema) = social_fixture();
        for target in [0.2, 0.8] {
            let config = WorkloadConfig {
                queries: 10,
                selectivity: Some(target),
                ..WorkloadConfig::default()
            };
            let workload = generate_workload(&graph, &schema, &config).unwrap();
            for q in &workload.queries {
                let Some(achieved) = q.selectivity_achieved else {
                    continue;
                };
                assert!(
                    achieved >= target - 0.05 && achieved <= (target + 0.3).min(1.0),
                    "target {target}, achieved {achieved}: {}",
                    q.text
                );
            }
        }
    }

    #[test]
    fn shape_weights_steer_the_mix() {
        let (graph, schema) = social_fixture();
        let config = WorkloadConfig {
            queries: 30,
            shape_weights: [1, 0, 0, 0],
            ..WorkloadConfig::default()
        };
        let workload = generate_workload(&graph, &schema, &config).unwrap();
        assert_eq!(workload.shape_counts(), [30, 0, 0, 0]);
    }
}
