//! A log-bucketed latency histogram for cheap streaming percentiles.
//!
//! Open-loop benches and the serving front end report p50/p95/p99 without
//! storing samples: values land in geometric buckets (four sub-buckets per
//! power of two, so quantiles carry at most ~19% relative error — plenty
//! for "is p99 one millisecond or one hundred"), recording is two array
//! index computations and an increment, and the whole histogram is a few
//! hundred `u64`s. The same structure feeds the `retry_after_ms` hint on
//! `overloaded` rejections in the net layer: half a typical request's
//! latency is a sensible back-off.
//!
//! This module lives in `bgpq-workload` (it started out in `bgpq-net`) so
//! the engine bench can use it without depending on the network stack;
//! `bgpq-net` re-exports it unchanged.

/// Sub-bucket resolution: values within one power of two split into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves 0..=63 for `u64` values, `SUBS` buckets each.
const BUCKETS: usize = 64 * SUBS;

/// A fixed-size log-bucketed histogram of `u64` samples (see module docs).
/// Units are the caller's choice; the net server and the benches record
/// microseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(value: u64) -> usize {
    if value < SUBS as u64 {
        // Values below the first full octave get exact buckets.
        return value as usize;
    }
    let octave = 63 - value.leading_zeros();
    let sub = ((value >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    octave as usize * SUBS + sub
}

/// The largest value that lands in `bucket` — what [`quantile`] reports for
/// any sample inside it.
///
/// [`quantile`]: LatencyHistogram::quantile
fn upper_bound(bucket: usize) -> u64 {
    if bucket < SUBS {
        return bucket as u64;
    }
    let octave = (bucket / SUBS) as u32;
    if octave < SUB_BITS {
        // Octaves below the first subdivided one hold values the exact
        // region already covers; these buckets are never populated.
        return SUBS as u64 - 1;
    }
    let sub = (bucket % SUBS) as u64;
    let base = 1u64 << octave;
    let width = base >> SUB_BITS;
    // Last bucket of the top octave would overflow; saturate.
    base.saturating_add(width * (sub + 1)).saturating_sub(1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` bucket for bucket — the merge step when
    /// per-lane histograms from an open-loop run combine into one report.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn quantiles_carry_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                got >= exact && got <= exact * 1.30,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.mean(), 5_000);
    }

    #[test]
    fn quantile_never_exceeds_the_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
        assert_eq!(h.quantile(0.0), 1_000_003);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn buckets_are_monotone() {
        let mut last = 0;
        for b in 0..BUCKETS - 1 {
            let ub = upper_bound(b);
            assert!(ub >= last, "bucket {b}");
            last = ub;
        }
        // Every value maps into a bucket whose bound is >= the value.
        for v in [5u64, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            assert!(upper_bound(bucket_of(v)) >= v, "value {v}");
        }
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 1..=1_000u64 {
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }
}
