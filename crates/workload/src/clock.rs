//! A fixed-interval arrival clock for open-loop load generation.
//!
//! Closed-loop benches (issue the next request when the previous one
//! returns) systematically under-report tail latency: a slow request delays
//! the requests behind it, so the very samples that would have shown the
//! queueing are never issued — coordinated omission. The open-loop
//! discipline fixes this by scheduling arrival times on a fixed grid
//! *before* any request runs: request `i` is due at `start + i·interval`
//! regardless of how long earlier requests took, and latency is measured
//! from the *scheduled* arrival, so time spent waiting behind a stall is
//! charged to the stalled requests.
//!
//! [`ArrivalClock`] encapsulates that grid. `bench_net` drives TCP
//! connections with it and the engine bench drives in-process lanes; both
//! share the interleaving convention that lane `c` of `C` owns arrivals
//! `c, c + C, c + 2C, …`.

use std::time::{Duration, Instant};

/// A fixed arrival grid: request `i` is due at `start + i·interval` (see
/// the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalClock {
    start: Instant,
    interval_nanos: u64,
    duration: Duration,
}

impl ArrivalClock {
    /// A clock offering `offered_qps` arrivals per second for `duration`,
    /// starting `lead` from now (a small lead lets worker threads spawn
    /// before the first arrival is due).
    pub fn new(offered_qps: u64, duration: Duration, lead: Duration) -> Self {
        ArrivalClock {
            start: Instant::now() + lead,
            interval_nanos: 1_000_000_000 / offered_qps.max(1),
            duration,
        }
    }

    /// The scheduled arrival instant of request `i`, or `None` when it
    /// falls past the run's duration.
    pub fn arrival(&self, i: u64) -> Option<Instant> {
        let offset = Duration::from_nanos(i.saturating_mul(self.interval_nanos));
        if offset >= self.duration {
            None
        } else {
            Some(self.start + offset)
        }
    }

    /// Sleeps until request `i` is due and returns its scheduled arrival
    /// instant (immediately, without sleeping, when the clock is already
    /// behind schedule), or `None` when `i` falls past the run's duration.
    /// Measure latency as `arrival.elapsed()` after the request completes —
    /// that charges queueing delay to the request that was scheduled to
    /// observe it.
    pub fn wait_for(&self, i: u64) -> Option<Instant> {
        let arrival = self.arrival(i)?;
        let now = Instant::now();
        if arrival > now {
            std::thread::sleep(arrival - now);
        }
        Some(arrival)
    }

    /// The nanosecond spacing between consecutive arrivals.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_fixed_and_bounded() {
        let clock = ArrivalClock::new(1_000, Duration::from_millis(10), Duration::ZERO);
        assert_eq!(clock.interval_nanos(), 1_000_000);
        let a0 = clock.arrival(0).unwrap();
        let a3 = clock.arrival(3).unwrap();
        assert_eq!(a3 - a0, Duration::from_millis(3));
        // 10 ms at 1 kqps → arrivals 0..=9 exist, 10 does not.
        assert!(clock.arrival(9).is_some());
        assert!(clock.arrival(10).is_none());
    }

    #[test]
    fn wait_returns_scheduled_arrival_even_when_late() {
        let clock = ArrivalClock::new(1_000_000, Duration::from_millis(5), Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        // Arrival 0 was due ~2 ms ago: wait_for must not sleep and the
        // elapsed time since the *scheduled* arrival reflects the delay.
        let scheduled = clock.wait_for(0).unwrap();
        assert!(scheduled.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn zero_offered_load_is_clamped() {
        let clock = ArrivalClock::new(0, Duration::from_secs(1), Duration::ZERO);
        assert_eq!(clock.interval_nanos(), 1_000_000_000);
    }
}
