//! Cross-algorithm equivalence: the paper's central claim, as a test suite.
//!
//! On generated workloads (fixed seeds, deterministic generator) over a
//! deterministic data graph, every algorithm of the same semantics must
//! return exactly the same answer:
//!
//! * subgraph queries: `VF2 = optVF2 = bVF2` — identical [`MatchSet`]s;
//! * simulation queries: `gsim = optgsim = bSim` — identical
//!   [`SimulationRelation`]s, node for node;
//!
//! while `bVF2`/`bSim` compute theirs from the bounded fragment `G_Q`
//! fetched through access-constraint indices.

use bgpq_access::{check_schema, discover_schema, AccessIndexSet, DiscoveryConfig};
use bgpq_core::{bounded_simulation_match, bounded_subgraph_match};
use bgpq_graph::{Graph, GraphBuilder, Value};
use bgpq_matching::{opt_simulation_match, opt_subgraph_match, simulation_match, SubgraphMatcher};
use bgpq_pattern::{Pattern, WorkloadGenerator};

/// A deterministic IMDb-shaped graph: years, awards, movies, actors,
/// actresses, countries, genres — rich enough that generated patterns find
/// matches and discovery finds non-trivial constraints.
fn data_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..6)
        .map(|i| b.add_node("year", Value::Int(2008 + i)))
        .collect();
    let awards: Vec<_> = (0..3)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    let countries: Vec<_> = (0..4)
        .map(|i| b.add_node("country", Value::str(format!("c{i}"))))
        .collect();
    let genres: Vec<_> = (0..3)
        .map(|i| b.add_node("genre", Value::str(format!("g{i}"))))
        .collect();
    for i in 0..18i64 {
        let m = b.add_node("movie", Value::Int(i));
        let y = years[(i % 6) as usize];
        let aw = awards[(i % 3) as usize];
        b.add_edge(y, m).unwrap();
        b.add_edge(aw, m).unwrap();
        b.add_edge(m, genres[(i % 3) as usize]).unwrap();
        for j in 0..2 {
            let actor = b.add_node("actor", Value::Int(10 * i + j));
            b.add_edge(m, actor).unwrap();
            b.add_edge(actor, countries[((i + j) % 4) as usize])
                .unwrap();
        }
        let actress = b.add_node("actress", Value::Int(100 + i));
        b.add_edge(m, actress).unwrap();
        b.add_edge(actress, countries[(i % 4) as usize]).unwrap();
    }
    b.build()
}

/// Discovered schema + indices, verified to hold on the graph.
fn discovered_indices(graph: &Graph) -> AccessIndexSet {
    let schema = discover_schema(graph, &DiscoveryConfig::default());
    assert!(
        check_schema(graph, &schema).is_empty(),
        "discovered schema must be satisfied by construction"
    );
    AccessIndexSet::build(graph, &schema)
}

/// The three fixed workload seeds the issue asks for.
const SEEDS: [u64; 3] = [1, 7, 42];

fn workload(graph: &Graph, seed: u64) -> Vec<Pattern> {
    let mut generator = WorkloadGenerator::with_seed(seed);
    let mut patterns = generator.generate_anchored(graph, 6);
    patterns.extend(generator.generate(graph, 6));
    patterns
}

#[test]
fn subgraph_queries_vf2_optvf2_bvf2_agree() {
    let g = data_graph();
    let indices = discovered_indices(&g);
    let mut bounded_total = 0usize;
    let mut nonempty_total = 0usize;
    for seed in SEEDS {
        for (i, q) in workload(&g, seed).iter().enumerate() {
            let vf2 = SubgraphMatcher::new(q, &g).find_all();
            let opt = opt_subgraph_match(q, &g, &indices);
            assert_eq!(vf2, opt, "VF2 vs optVF2, seed {seed}, pattern {i}");
            let run = bounded_subgraph_match(q, &g, &indices)
                .unwrap_or_else(|e| panic!("seed {seed}, pattern {i} not bounded: {e}"));
            assert_eq!(vf2, run.result, "VF2 vs bVF2, seed {seed}, pattern {i}");
            bounded_total += 1;
            if !vf2.is_empty() {
                nonempty_total += 1;
            }
        }
    }
    // The discovered schema has a global constraint per label, so every
    // workload pattern is effectively bounded.
    assert_eq!(bounded_total, SEEDS.len() * 12);
    // Anchored generation guarantees the suite exercises non-empty answers.
    assert!(
        nonempty_total >= SEEDS.len() * 3,
        "too few non-empty workloads: {nonempty_total}"
    );
}

#[test]
fn simulation_queries_gsim_optgsim_bsim_agree() {
    let g = data_graph();
    let indices = discovered_indices(&g);
    let mut nonempty_total = 0usize;
    for seed in SEEDS {
        for (i, q) in workload(&g, seed).iter().enumerate() {
            let gsim = simulation_match(q, &g);
            let opt = opt_simulation_match(q, &g, &indices);
            assert_eq!(gsim, opt, "gsim vs optgsim, seed {seed}, pattern {i}");
            let run = bounded_simulation_match(q, &g, &indices)
                .unwrap_or_else(|e| panic!("seed {seed}, pattern {i} not bounded: {e}"));
            assert_eq!(gsim, run.result, "gsim vs bSim, seed {seed}, pattern {i}");
            if !gsim.is_empty() {
                nonempty_total += 1;
            }
        }
    }
    assert!(
        nonempty_total >= SEEDS.len() * 3,
        "too few non-empty workloads: {nonempty_total}"
    );
}

#[test]
fn bounded_fragments_are_small_and_lookups_bounded() {
    let g = data_graph();
    let indices = discovered_indices(&g);
    for seed in SEEDS {
        for q in workload(&g, seed) {
            let run = bounded_subgraph_match(&q, &g, &indices).unwrap();
            // The fragment never exceeds the whole graph, and the fetched
            // node count respects the plan's a-priori bound.
            assert!(run.fetch.fragment_size() <= g.size());
            assert!((run.fetch.fragment_nodes as u64) <= run.plan.worst_case_nodes());
            assert!(run.fetch.index_lookups > 0 || q.is_empty());
        }
    }
}

/// Equivalence also holds when the fetch has to propagate through a general
/// `(year, award) → movie` constraint rather than global label counts.
#[test]
fn equivalence_through_pair_constraint_propagation() {
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_pattern::{PatternBuilder, Predicate};

    let g = data_graph();
    let year = g.interner().get("year").unwrap();
    let award = g.interner().get("award").unwrap();
    let movie = g.interner().get("movie").unwrap();
    let actor = g.interner().get("actor").unwrap();
    let actress = g.interner().get("actress").unwrap();
    let country = g.interner().get("country").unwrap();
    // No global movie/actor/actress/country constraints: those nodes can
    // only be fetched by propagating through the pattern.
    let schema = AccessSchema::from_constraints([
        AccessConstraint::global(year, 10),
        AccessConstraint::global(award, 10),
        AccessConstraint::new([year, award], movie, 6),
        AccessConstraint::unary(movie, actor, 4),
        AccessConstraint::unary(movie, actress, 4),
        AccessConstraint::unary(actor, country, 2),
    ]);
    assert!(check_schema(&g, &schema).is_empty());
    let indices = AccessIndexSet::build(&g, &schema);

    let mut pb = PatternBuilder::with_interner(g.interner().clone());
    let p_m = pb.node("movie", Predicate::always());
    let p_y = pb.node("year", Predicate::range(2009, 2011));
    let p_aw = pb.node("award", Predicate::always());
    let p_ac = pb.node("actor", Predicate::always());
    let p_c = pb.node("country", Predicate::always());
    pb.edge(p_y, p_m);
    pb.edge(p_aw, p_m);
    pb.edge(p_m, p_ac);
    pb.edge(p_ac, p_c);
    let q = pb.build();

    let vf2 = SubgraphMatcher::new(&q, &g).find_all();
    assert!(!vf2.is_empty());
    assert_eq!(vf2, opt_subgraph_match(&q, &g, &indices));
    let run = bounded_subgraph_match(&q, &g, &indices).unwrap();
    assert_eq!(vf2, run.result);
    // Every step except the two globals keys off fetched candidates.
    assert!(run.plan.steps.iter().filter(|s| !s.via.is_empty()).count() >= 3);
    // And the fragment is genuinely bounded: far below |G|.
    assert!(run.fetch.fragment_size() < g.size() / 2);
}
