//! # bgpq-core
//!
//! Bounded query evaluation for the `bgpq` workspace — the heart of *Making
//! Pattern Queries Bounded in Big Graphs* (Cao, Fan, Huai, Huang, ICDE 2015).
//!
//! A pattern query `Q` is **effectively bounded** under an access schema `A`
//! when, for every graph `G |= A`, its answer can be computed from a fragment
//! `G_Q ⊆ G` whose size depends only on `Q` and `A`. This crate implements
//! the constructive pipeline behind that claim:
//!
//! * [`plan`] — decides effective boundedness and produces a [`QueryPlan`]:
//!   an ordered list of [`FetchStep`]s covering every pattern node with a
//!   constraint of the schema. Coverage is semantics-aware
//!   ([`Semantics::Isomorphism`] vs [`Semantics::Simulation`]);
//! * [`fetch`] — executes a plan over an
//!   [`AccessIndexSet`](bgpq_access::AccessIndexSet), fetching candidate
//!   sets through index lookups only and inducing the bounded fragment
//!   `G_Q` as a [`Subgraph`](bgpq_graph::Subgraph);
//! * [`exec`] — the bounded executors [`bounded_subgraph_match`] (`bVF2`)
//!   and [`bounded_simulation_match`] (`bSim`), which run the
//!   `bgpq-matching` algorithms directly on a zero-copy
//!   [`FragmentView`](bgpq_graph::FragmentView) of `G_Q` (built into a
//!   reusable [`ScratchArena`](bgpq_graph::ScratchArena) — no fragment
//!   materialization, no id remapping), returning answers that are
//!   **identical** to whole-graph `VF2` / `gsim`.
//!
//! The cross-algorithm equivalence suite in `tests/equivalence.rs` asserts
//! that identity on generated workloads: `VF2 = optVF2 = bVF2` and
//! `gsim = optgsim = bSim`, node for node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fetch;
pub mod plan;

pub use exec::{
    bounded_simulation_match, bounded_simulation_match_planned,
    bounded_simulation_match_prefetched, bounded_subgraph_match, bounded_subgraph_match_planned,
    bounded_subgraph_match_prefetched, plan_for_indices, BoundedRun,
};
pub use fetch::{
    execute_plan, fetch_candidate_sets, CandidateSet, FetchResult, FetchStats, LookupMemo,
};
pub use plan::{plan_query, plan_query_filtered, FetchStep, PlanError, QueryPlan, Semantics};
