//! The bounded executors `bVF2` and `bSim`.
//!
//! Given a pattern `Q`, a data graph `G` and the indices of an access schema
//! `A` with `G |= A`, the executors
//!
//! 1. build a [`QueryPlan`] (or fail with [`PlanError`] when `Q` is not
//!    effectively bounded under `A` for the requested semantics);
//! 2. fetch the bounded fragment `G_Q` through index lookups only
//!    ([`crate::fetch`]);
//! 3. build a zero-copy [`FragmentView`] of `G_Q` over `G` — membership
//!    bitset plus fragment-local adjacency, assembled into a reusable
//!    [`ScratchArena`] — and run the corresponding `bgpq-matching`
//!    algorithm directly on the view, seeded with the fetched candidate
//!    sets.
//!
//! Because the view keeps parent node ids throughout, the answers come out
//! over `G` with **no id remapping**; the former hot path — materializing
//! `G_Q` as a standalone graph and translating ids both ways — survives only
//! as the `#[cfg(test)]` oracle that the zero-copy path is differentially
//! tested against.
//!
//! The central claim of the paper — and the invariant the equivalence test
//! suite locks down — is that the result equals whole-graph matching
//! exactly: `bVF2(Q, G_Q) = VF2(Q, G)` and `bSim(Q, G_Q) = gsim(Q, G)`,
//! while `|G_Q|` is bounded by `Q` and `A` alone.

use crate::fetch::{fetch_candidates, CandidateSet, FetchStats};
use crate::plan::{plan_query_filtered, PlanError, QueryPlan, Semantics};
use bgpq_access::AccessIndexSet;
use bgpq_graph::{FragmentView, Graph, GraphAccess, ScratchArena};
use bgpq_matching::{
    MatchSet, SimulationMatcher, SimulationRelation, SubgraphMatcher, Vf2Config, Vf2Stats,
};
use bgpq_pattern::Pattern;
use std::time::Instant;

/// The outcome of one bounded evaluation.
#[derive(Debug, Clone)]
pub struct BoundedRun<T> {
    /// The answer, over node ids of the *original* graph `G`.
    pub result: T,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// Fetch counters, including the fragment size `|G_Q|`.
    pub fetch: FetchStats,
}

/// `bVF2`: bounded subgraph-isomorphism matching.
///
/// Returns the exact `VF2` answer computed from the fetched fragment, or
/// [`PlanError`] when the query is not effectively bounded under the schema.
/// Constraints whose index was truncated during its build are excluded from
/// planning — a truncated index cannot honor the fetch contract.
///
/// Allocates a fresh [`ScratchArena`] per call; session layers that serve
/// repeated queries should plan once and call
/// [`bounded_subgraph_match_planned`] with a pooled arena instead.
pub fn bounded_subgraph_match(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> Result<BoundedRun<MatchSet>, PlanError> {
    let plan = plan_for_indices(pattern, indices, Semantics::Isomorphism)?;
    let mut scratch = ScratchArena::new();
    let (result, fetch, _) = bounded_subgraph_match_planned(
        &plan,
        pattern,
        graph,
        indices,
        Vf2Config::default(),
        &mut scratch,
    );
    Ok(BoundedRun {
        result,
        plan,
        fetch,
    })
}

/// `bVF2` with a precomputed plan, explicit matcher knobs and a caller-owned
/// scratch arena.
///
/// Session layers (the plan cache of `bgpq-engine`) plan once per distinct
/// pattern and replay the plan here on every request, so the planner's
/// closure computation is off the per-query hot path. The fragment view is
/// built into `scratch`, whose buffers are reused across calls — in steady
/// state the per-query fragment construction allocates nothing. Also returns
/// the fragment-side search statistics, letting callers enforce step
/// budgets.
///
/// `plan` must have been produced for this `pattern` against the schema
/// behind `indices` (e.g. by [`plan_for_indices`]); a plan from a
/// *different* schema whose constraint ids happen to exist in `indices`
/// fetches through the wrong indices and corrupts the answer undetected.
///
/// The plan is only borrowed — the per-query hot path allocates nothing
/// plan-shaped; callers that want a [`BoundedRun`] assemble it from the
/// returned parts and the plan they own.
///
/// # Panics
/// Panics if `plan` was built for [`Semantics::Simulation`], or if it
/// references a constraint id absent from `indices`.
pub fn bounded_subgraph_match_planned(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    config: Vf2Config,
    scratch: &mut ScratchArena,
) -> (MatchSet, FetchStats, Vf2Stats) {
    assert_eq!(
        plan.semantics,
        Semantics::Isomorphism,
        "bVF2 requires an isomorphism plan"
    );
    let fetched = fetch_candidates(plan, pattern, graph, indices);
    bounded_subgraph_match_prefetched(pattern, graph, &fetched, config, scratch)
}

/// `bVF2` from an already-fetched [`CandidateSet`]: builds the zero-copy
/// fragment view from [`CandidateSet::all_nodes`] and matches on it, issuing
/// **no** index lookups. This is the fragment-cache hit path of session
/// layers — the candidate set must have been fetched for this `pattern`
/// against this `graph` (same snapshot), or the answer is undefined.
///
/// The returned [`FetchStats`] are the candidate set's own counters with the
/// fragment fields filled in and the view-construction time *added* to
/// [`FetchStats::fragment_build_nanos`]; callers reusing a cached set can
/// subtract the cached baseline to isolate this call's cost.
pub fn bounded_subgraph_match_prefetched(
    pattern: &Pattern,
    graph: &Graph,
    fetched: &CandidateSet,
    config: Vf2Config,
    scratch: &mut ScratchArena,
) -> (MatchSet, FetchStats, Vf2Stats) {
    let build_started = Instant::now();
    let view = FragmentView::induced(graph, &fetched.all_nodes, scratch);
    let mut fetch = fetched.stats.clone();
    fetch.fragment_nodes = view.node_count();
    fetch.fragment_edges = view.edge_count();
    fetch.fragment_build_nanos = fetch
        .fragment_build_nanos
        .saturating_add(build_started.elapsed().as_nanos() as u64);
    // Candidates are parent ids and the view speaks parent ids: the matches
    // come out over `G` directly.
    let (matches, stats) = SubgraphMatcher::new(pattern, &view)
        .with_candidates(fetched.candidates.clone())
        .with_config(config)
        .run();
    (matches, fetch, stats)
}

/// `bSim`: bounded graph-simulation matching.
///
/// Returns the exact `gsim` answer computed from the fetched fragment, or
/// [`PlanError`] when the query is not effectively bounded under the schema
/// for simulation semantics. Truncated indices are excluded from planning,
/// as for [`bounded_subgraph_match`].
pub fn bounded_simulation_match(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> Result<BoundedRun<SimulationRelation>, PlanError> {
    let plan = plan_for_indices(pattern, indices, Semantics::Simulation)?;
    let mut scratch = ScratchArena::new();
    let (result, fetch) =
        bounded_simulation_match_planned(&plan, pattern, graph, indices, &mut scratch);
    Ok(BoundedRun {
        result,
        plan,
        fetch,
    })
}

/// `bSim` with a precomputed plan and a caller-owned scratch arena, the
/// simulation counterpart of [`bounded_subgraph_match_planned`] — the same
/// plan/schema contract applies, and the plan is likewise only borrowed.
///
/// # Panics
/// Panics if `plan` was built for [`Semantics::Isomorphism`], or if it
/// references a constraint id absent from `indices`.
pub fn bounded_simulation_match_planned(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    scratch: &mut ScratchArena,
) -> (SimulationRelation, FetchStats) {
    assert_eq!(
        plan.semantics,
        Semantics::Simulation,
        "bSim requires a simulation plan"
    );
    let fetched = fetch_candidates(plan, pattern, graph, indices);
    bounded_simulation_match_prefetched(pattern, graph, &fetched, scratch)
}

/// `bSim` from an already-fetched [`CandidateSet`], the simulation
/// counterpart of [`bounded_subgraph_match_prefetched`] — the same
/// pattern/snapshot contract and [`FetchStats`] conventions apply.
pub fn bounded_simulation_match_prefetched(
    pattern: &Pattern,
    graph: &Graph,
    fetched: &CandidateSet,
    scratch: &mut ScratchArena,
) -> (SimulationRelation, FetchStats) {
    let build_started = Instant::now();
    let view = FragmentView::induced(graph, &fetched.all_nodes, scratch);
    let mut fetch = fetched.stats.clone();
    fetch.fragment_nodes = view.node_count();
    fetch.fragment_edges = view.edge_count();
    fetch.fragment_build_nanos = fetch
        .fragment_build_nanos
        .saturating_add(build_started.elapsed().as_nanos() as u64);
    let relation = SimulationMatcher::new(pattern, &view)
        .with_candidates(fetched.candidates.clone())
        .run();
    (relation, fetch)
}

/// Plans over the schema behind `indices`, excluding constraints whose
/// index dropped entries when the per-node combination cap was hit: a
/// lookup against such an index can report "empty" for a set that does have
/// common neighbors, which would silently lose matches.
pub fn plan_for_indices(
    pattern: &Pattern,
    indices: &AccessIndexSet,
    semantics: Semantics,
) -> Result<QueryPlan, PlanError> {
    plan_query_filtered(pattern, indices.schema(), semantics, |id| {
        indices.get(id).is_some_and(|index| !index.is_truncated())
    })
}

/// The pre-zero-copy execution path, kept as the differential oracle: fetch,
/// **materialize** `G_Q` as a standalone graph, remap candidates to local
/// ids, match, and remap the answers back to parent ids.
#[cfg(test)]
mod oracle {
    use super::*;
    use crate::fetch::execute_plan;
    use bgpq_graph::NodeId;

    pub fn bounded_subgraph_match_materialized(
        plan: &QueryPlan,
        pattern: &Pattern,
        graph: &Graph,
        indices: &AccessIndexSet,
        config: Vf2Config,
    ) -> (MatchSet, FetchStats) {
        assert_eq!(plan.semantics, Semantics::Isomorphism);
        let fetched = execute_plan(plan, pattern, graph, indices);
        let m = fetched.fragment.materialize(graph);
        let local_candidates = to_local(&fetched.candidates, &m.to_parent);
        let (local_matches, _) = SubgraphMatcher::new(pattern, &m.graph)
            .with_candidates(local_candidates)
            .with_config(config)
            .run();
        let result = MatchSet::new(
            local_matches
                .iter()
                .map(|mat| mat.map_nodes(|v| m.parent_node(v))),
        );
        (result, fetched.stats)
    }

    pub fn bounded_simulation_match_materialized(
        plan: &QueryPlan,
        pattern: &Pattern,
        graph: &Graph,
        indices: &AccessIndexSet,
    ) -> (SimulationRelation, FetchStats) {
        assert_eq!(plan.semantics, Semantics::Simulation);
        let fetched = execute_plan(plan, pattern, graph, indices);
        let m = fetched.fragment.materialize(graph);
        let local_candidates = to_local(&fetched.candidates, &m.to_parent);
        let local_relation = SimulationMatcher::new(pattern, &m.graph)
            .with_candidates(local_candidates)
            .run();
        (
            local_relation.map_nodes(|v| m.parent_node(v)),
            fetched.stats,
        )
    }

    /// Translates per-pattern-node candidate sets from parent ids to the
    /// materialized fragment's local ids. `to_parent` is sorted ascending
    /// (the fragment stores its nodes in a `BTreeSet`), so a binary search
    /// inverts it.
    fn to_local(candidates: &[Vec<NodeId>], to_parent: &[NodeId]) -> Vec<Vec<NodeId>> {
        candidates
            .iter()
            .map(|set| {
                set.iter()
                    .filter_map(|v| to_parent.binary_search(v).ok().map(|i| NodeId(i as u32)))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_matching::simulation_match;
    use bgpq_pattern::{PatternBuilder, PatternNodeId, Predicate};

    /// The running-example graph plus heavy unrelated noise: k extra
    /// disconnected movie-shaped stars whose labels don't appear in the
    /// pattern, and parentless b-noise for the simulation test.
    fn setup() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let aw = b.add_node("award", Value::str("Oscar"));
        for i in 0..4 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(if i % 2 == 0 { y1 } else { y2 }, m).unwrap();
            b.add_edge(aw, m).unwrap();
            for j in 0..2 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        for i in 0..100 {
            b.add_node("unrelated", Value::Int(i));
        }
        let g = b.build();
        let year = g.interner().get("year").unwrap();
        let award = g.interner().get("award").unwrap();
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(year, 2),
            AccessConstraint::global(award, 1),
            AccessConstraint::new([year, award], movie, 2),
            AccessConstraint::unary(movie, actor, 2),
        ]);
        (g, schema)
    }

    fn movie_pattern(g: &Graph) -> Pattern {
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2011));
        let a = pb.node("award", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act);
        pb.build()
    }

    #[test]
    fn bvf2_equals_whole_graph_vf2_on_a_small_fragment() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let whole = SubgraphMatcher::new(&q, &g).find_all();
        let run = bounded_subgraph_match(&q, &g, &indices).unwrap();
        assert_eq!(whole, run.result);
        assert_eq!(run.result.len(), 4); // 2 movies × 2 actors
                                         // The fragment is a fraction of the 111-node graph.
        assert!(run.fetch.fragment_nodes <= 8);
        assert!(run.fetch.fragment_size() < g.size() / 4);
    }

    #[test]
    fn bsim_requires_simulation_sound_schema() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        // actor is only reachable through its parent movie → not bounded
        // for simulation under this schema.
        assert!(bounded_simulation_match(&q, &g, &indices).is_err());
    }

    #[test]
    fn bsim_equals_whole_graph_gsim() {
        // a -> b with schema global(b), b → (a, N): bounded for simulation.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node("a", Value::Int(1));
        let b1 = gb.add_node("b", Value::Int(1));
        let a2 = gb.add_node("a", Value::Int(2));
        let b2 = gb.add_node("b", Value::Int(2));
        gb.add_node("a", Value::Int(3)); // childless a: pruned by gsim
        gb.add_edge(a1, b1).unwrap();
        gb.add_edge(a2, b2).unwrap();
        for i in 0..30 {
            gb.add_node("z", Value::Int(i));
        }
        let g = gb.build();
        let la = g.interner().get("a").unwrap();
        let lb = g.interner().get("b").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(lb, 2),
            AccessConstraint::unary(lb, la, 1),
        ]);
        let indices = AccessIndexSet::build(&g, &schema);

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pbn = pb.node("b", Predicate::always());
        pb.edge(pa, pbn);
        let q = pb.build();

        let whole = simulation_match(&q, &g);
        let run = bounded_simulation_match(&q, &g, &indices).unwrap();
        assert_eq!(whole, run.result);
        assert_eq!(run.result.matches_of(PatternNodeId(0)).len(), 2);
        assert_eq!(run.result.matches_of(PatternNodeId(1)).len(), 2);
        assert!(run.fetch.fragment_nodes <= 4);
    }

    #[test]
    fn unbounded_query_is_rejected() {
        let (g, _) = setup();
        let indices = AccessIndexSet::build(&g, &AccessSchema::new());
        let q = movie_pattern(&g);
        let err = bounded_subgraph_match(&q, &g, &indices).unwrap_err();
        assert_eq!(err.uncovered.len(), q.node_count());
    }

    #[test]
    fn empty_pattern_matches_once() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = PatternBuilder::with_interner(g.interner().clone()).build();
        let run = bounded_subgraph_match(&q, &g, &indices).unwrap();
        assert_eq!(run.result.len(), 1);
        assert!(run.result.matches()[0].is_empty());
        let sim = bounded_simulation_match(&q, &g, &indices).unwrap();
        assert!(sim.result.is_empty());
    }

    #[test]
    fn no_match_when_predicates_filter_everything() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 1999));
        let a = pb.node("award", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        let q = pb.build();
        let run = bounded_subgraph_match(&q, &g, &indices).unwrap();
        assert!(run.result.is_empty());
        assert_eq!(run.result, SubgraphMatcher::new(&q, &g).find_all());
    }

    /// The zero-copy path must return byte-identical answers and fetch
    /// counters to the retired materialize-and-remap path.
    #[test]
    fn zero_copy_execution_matches_materialized_oracle() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut scratch = ScratchArena::new();

        let q = movie_pattern(&g);
        let plan = plan_for_indices(&q, &indices, Semantics::Isomorphism).unwrap();
        let (fast, fast_fetch, _) = bounded_subgraph_match_planned(
            &plan,
            &q,
            &g,
            &indices,
            Vf2Config::default(),
            &mut scratch,
        );
        let (oracle, oracle_fetch) = super::oracle::bounded_subgraph_match_materialized(
            &plan,
            &q,
            &g,
            &indices,
            Vf2Config::default(),
        );
        assert_eq!(fast, oracle);
        assert_eq!(fast_fetch.fragment_nodes, oracle_fetch.fragment_nodes);
        assert_eq!(fast_fetch.fragment_edges, oracle_fetch.fragment_edges);
        assert_eq!(fast_fetch.index_lookups, oracle_fetch.index_lookups);
        assert_eq!(
            fast_fetch.predicate_filtered,
            oracle_fetch.predicate_filtered
        );

        // Simulation side, on a simulation-bounded fixture, reusing the
        // same arena (exercises cross-query reuse).
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node("a", Value::Int(1));
        let b1 = gb.add_node("b", Value::Int(1));
        gb.add_edge(a1, b1).unwrap();
        gb.add_node("b", Value::Int(2));
        let g2 = gb.build();
        let la = g2.interner().get("a").unwrap();
        let lb = g2.interner().get("b").unwrap();
        let schema2 = AccessSchema::from_constraints([
            AccessConstraint::global(lb, 2),
            AccessConstraint::unary(lb, la, 1),
        ]);
        let indices2 = AccessIndexSet::build(&g2, &schema2);
        let mut pb = PatternBuilder::with_interner(g2.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pbn = pb.node("b", Predicate::always());
        pb.edge(pa, pbn);
        let q2 = pb.build();
        let plan2 = plan_for_indices(&q2, &indices2, Semantics::Simulation).unwrap();
        let (fast, _) = bounded_simulation_match_planned(&plan2, &q2, &g2, &indices2, &mut scratch);
        let (oracle, _) =
            super::oracle::bounded_simulation_match_materialized(&plan2, &q2, &g2, &indices2);
        assert_eq!(fast, oracle);
        assert_eq!(fast, simulation_match(&q2, &g2));
    }

    /// Arena reuse across many queries must never leak state between
    /// fragments.
    #[test]
    fn scratch_arena_reuse_is_stateless_across_queries() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut scratch = ScratchArena::new();
        let q = movie_pattern(&g);
        let plan = plan_for_indices(&q, &indices, Semantics::Isomorphism).unwrap();
        let baseline = SubgraphMatcher::new(&q, &g).find_all();
        for _ in 0..5 {
            let (matches, fetch, _) = bounded_subgraph_match_planned(
                &plan,
                &q,
                &g,
                &indices,
                Vf2Config::default(),
                &mut scratch,
            );
            assert_eq!(matches, baseline);
            assert!(fetch.fragment_nodes <= 8);
        }
    }

    /// A hub with enough (x, y) neighbor pairs to overflow the per-node
    /// combination cap: its pair index is truncated and must be excluded
    /// from bounded planning rather than silently losing matches.
    #[test]
    fn truncated_indices_are_excluded_from_plans() {
        use bgpq_matching::opt_subgraph_match;
        let mut gb = GraphBuilder::new();
        let hub = gb.add_node("hub", Value::Null);
        for i in 0..70 {
            let x = gb.add_node("x", Value::Int(i));
            let y = gb.add_node("y", Value::Int(i));
            gb.add_edge(x, hub).unwrap();
            gb.add_edge(y, hub).unwrap();
        }
        let g = gb.build();
        let x_l = g.interner().get("x").unwrap();
        let y_l = g.interner().get("y").unwrap();
        let hub_l = g.interner().get("hub").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(x_l, 70),
            AccessConstraint::global(y_l, 70),
            AccessConstraint::new([x_l, y_l], hub_l, 4900),
        ]);
        let indices = AccessIndexSet::build(&g, &schema);
        assert!(
            indices
                .get(bgpq_access::ConstraintId(2))
                .unwrap()
                .is_truncated(),
            "fixture must actually truncate"
        );

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let px = pb.node("x", Predicate::always());
        let py = pb.node("y", Predicate::always());
        let ph = pb.node("hub", Predicate::always());
        pb.edge(px, ph);
        pb.edge(py, ph);
        let q = pb.build();

        // The only constraint covering `hub` is truncated, so the query is
        // rejected rather than answered from an incomplete index.
        let err = bounded_subgraph_match(&q, &g, &indices).unwrap_err();
        assert_eq!(err.uncovered, vec![PatternNodeId(2)]);
        // And the seeded baseline falls back instead of narrowing through
        // the truncated index: answers stay identical to plain VF2.
        let plain = SubgraphMatcher::new(&q, &g).find_all();
        assert_eq!(plain.len(), 70 * 70);
        assert_eq!(plain, opt_subgraph_match(&q, &g, &indices));
    }
}
