//! Executing a fetch plan: from indices to the bounded fragment `G_Q`.
//!
//! [`execute_plan`] walks the steps of a [`QueryPlan`] in order. For each
//! pattern node it issues the index lookups the step prescribes — one lookup
//! for a global constraint, one per combination of already-fetched `via`
//! candidates otherwise — unions the answers, and filters them by the node's
//! predicate (sound: every answer node must satisfy it). The union of all
//! candidate sets induces the fragment `G_Q` in `G`, which is the only part
//! of the data graph the bounded executors of [`crate::exec`] ever look at.
//!
//! The work performed here is bounded by the plan, not by `|G|`: the number
//! of lookups is a product of constraint bounds, each answer has at most `N`
//! nodes, and building the induced [`Subgraph`] touches only the adjacency of
//! fetched nodes. [`FetchStats`] records the actual counts so experiments can
//! reproduce the paper's `|G_Q|/|G|` measurements.
//!
//! Two entry points share the lookup loop: [`execute_plan`] materializes the
//! fragment as an explicit [`Subgraph`] (inspection, tests, offline tools),
//! while [`fetch_candidate_sets`] returns only a [`CandidateSet`] — the
//! candidate sets and their sorted union — from which the bounded executors
//! of [`crate::exec`] build a zero-copy
//! [`FragmentView`](bgpq_graph::FragmentView) instead of ever allocating a
//! `Subgraph` on the hot path.
//!
//! All lookups go through a [`LookupMemo`]: the key set of a step is
//! deduplicated before touching the index (via-combinations can repeat a
//! canonical key, and two same-labeled pattern nodes fetched through the
//! same constraint repeat whole key sets), and a memo shared across the
//! queries of a batch lets one lookup pass feed many fetches.

use crate::plan::QueryPlan;
use bgpq_access::{AccessIndexSet, ConstraintId, ConstraintIndex};
use bgpq_graph::bitset::{dedup_with_bitset, NodeBitSet};
use bgpq_graph::{Graph, NodeId, Subgraph};
use bgpq_matching::seed::for_each_combination;
use bgpq_pattern::Pattern;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

/// Counters describing one plan execution.
///
/// Deliberately **not** `PartialEq`: the struct carries the wall-clock
/// [`FetchStats::fragment_build_nanos`], so two semantically identical
/// fetches are never byte-equal. Compare the individual counters instead.
#[derive(Debug, Clone, Default)]
pub struct FetchStats {
    /// Number of **distinct** index lookups issued. A step's key set is
    /// deduplicated before touching the index, and a batch-shared
    /// [`LookupMemo`] answers repeated keys from memory, so this counts
    /// lookups that actually reached a [`bgpq_access::ConstraintIndex`] —
    /// repeats land in [`FetchStats::lookups_deduped`] instead.
    pub index_lookups: u64,
    /// Lookup keys answered from the [`LookupMemo`] instead of the index:
    /// repeated canonical keys within a step, across the steps of one plan,
    /// or across the queries of a batch sharing the memo.
    pub lookups_deduped: u64,
    /// Total nodes returned by lookups, before deduplication/filtering.
    pub nodes_returned: u64,
    /// Distinct fetched nodes dropped because the pattern node's predicate
    /// rejected them — a measure of how selective the query's predicates are
    /// relative to the schema's constraints.
    pub predicate_filtered: u64,
    /// Nodes in the fetched fragment `|V(G_Q)|`.
    pub fragment_nodes: usize,
    /// Edges in the fetched fragment `|E(G_Q)|`.
    pub fragment_edges: usize,
    /// Nanoseconds spent fetching candidates and building the fragment
    /// (index lookups + `Subgraph`/`FragmentView` construction). A timing,
    /// not a semantic counter: two equal fetches may differ here.
    pub fragment_build_nanos: u64,
}

impl FetchStats {
    /// `|G_Q| = |V(G_Q)| + |E(G_Q)|`.
    pub fn fragment_size(&self) -> usize {
        self.fragment_nodes + self.fragment_edges
    }
}

/// The outcome of executing a plan: per-node candidates plus the fragment.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// Sorted, deduplicated candidate set per pattern node (indexed by
    /// pattern node id).
    pub candidates: Vec<Vec<NodeId>>,
    /// The bounded fragment `G_Q`: the subgraph of `G` induced by the union
    /// of all candidate sets.
    pub fragment: Subgraph,
    /// Counters for reporting.
    pub stats: FetchStats,
}

/// The lean fetch outcome the bounded executors consume: candidate sets and
/// their sorted union, with no fragment container allocated.
///
/// This is the unit session layers cache: together with the pattern it was
/// fetched for, a `CandidateSet` fully determines the bounded fragment `G_Q`
/// (the subgraph induced by [`CandidateSet::all_nodes`]), so reusing one
/// skips every index lookup of a repeated query.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Sorted, deduplicated candidate set per pattern node (indexed by
    /// pattern node id).
    pub candidates: Vec<Vec<NodeId>>,
    /// Sorted, deduplicated union of all candidate sets — the node set of
    /// the fragment `G_Q` those candidates induce.
    pub all_nodes: Vec<NodeId>,
    /// Counters of the fetch that produced this set.
    /// `fragment_nodes`/`fragment_edges` are left for the caller to fill
    /// once the fragment representation (view or subgraph) exists;
    /// `fragment_build_nanos` holds the lookup-side time, to which the
    /// executors add their view-construction time.
    pub stats: FetchStats,
}

/// A memo of index lookups, deduplicating repeated keys.
///
/// Every fetch routes its lookups through one of these: repeated canonical
/// keys — within a step, across the steps of a plan, or across the queries
/// of a batch when the caller shares the memo — are answered from memory and
/// counted as [`FetchStats::lookups_deduped`] instead of re-reaching the
/// index.
///
/// A memo is only valid against one [`AccessIndexSet`]: entries carry no
/// version, so sharing a memo across snapshots would serve stale answers.
/// Batch layers must scope a memo to the queries of a single snapshot.
#[derive(Debug, Default)]
pub struct LookupMemo {
    map: HashMap<(ConstraintId, Vec<NodeId>), Vec<NodeId>>,
}

impl LookupMemo {
    /// An empty memo.
    pub fn new() -> Self {
        LookupMemo::default()
    }

    /// Number of distinct `(constraint, key)` lookups memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no lookup has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The common neighbors of `key` under `constraint`, from the memo when
    /// the canonical key was already looked up, from `index` otherwise. The
    /// key is canonicalized (sorted, deduplicated) exactly as
    /// [`ConstraintIndex::common_neighbors`] does, so permuted via-tuples
    /// share one entry.
    fn lookup(
        &mut self,
        index: &ConstraintIndex,
        constraint: ConstraintId,
        key: &[NodeId],
        stats: &mut FetchStats,
    ) -> &[NodeId] {
        let mut canonical = key.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        match self.map.entry((constraint, canonical)) {
            Entry::Occupied(slot) => {
                stats.lookups_deduped += 1;
                slot.into_mut()
            }
            Entry::Vacant(slot) => {
                stats.index_lookups += 1;
                slot.insert(index.common_neighbors(key).to_vec())
            }
        }
    }
}

/// Runs the index-lookup loop of `plan` with a private [`LookupMemo`],
/// producing per-node candidates and their union. Shared by
/// [`execute_plan`] and the bounded executors.
///
/// # Panics
/// Panics if `plan` references constraints absent from `indices` (i.e. the
/// plan was built against a different schema).
pub(crate) fn fetch_candidates(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> CandidateSet {
    let mut memo = LookupMemo::new();
    fetch_candidate_sets(plan, pattern, graph, indices, &mut memo)
}

/// Runs the index-lookup loop of `plan`, producing per-node candidates and
/// their union, with all lookups routed through `memo`.
///
/// Batch layers pass one memo for a group of queries executed against the
/// same snapshot, so overlapping lookups — the common case for templated
/// queries over a hot subgraph — are issued once and shared; single-query
/// callers pass a fresh memo, which still deduplicates repeated keys within
/// the plan itself. The memo must not outlive the `indices` it was first
/// used with (see [`LookupMemo`]).
///
/// # Panics
/// Panics if `plan` references constraints absent from `indices` (i.e. the
/// plan was built against a different schema).
pub fn fetch_candidate_sets(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    memo: &mut LookupMemo,
) -> CandidateSet {
    let started = Instant::now();
    let n = pattern.node_count();
    let mut candidates: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stats = FetchStats::default();
    // Via-combinations over overlapping lookups return heavily duplicated
    // unions; a bitmap membership pass drops the repeats in O(n) before the
    // (now much smaller) sort. Reused across steps to amortize its words.
    let mut seen = NodeBitSet::with_capacity(graph.node_count());

    for step in &plan.steps {
        let index = indices
            .get(step.constraint)
            .expect("plan constraint must exist in the index set");
        let mut fetched: Vec<NodeId> = Vec::new();
        if step.via.is_empty() {
            fetched.extend_from_slice(memo.lookup(index, step.constraint, &[], &mut stats));
        } else {
            for_each_combination(&step.via, &candidates, &mut |key| {
                fetched.extend_from_slice(memo.lookup(index, step.constraint, key, &mut stats));
            });
        }
        stats.nodes_returned += fetched.len() as u64;
        dedup_with_bitset(&mut fetched, &mut seen);
        fetched.sort_unstable();
        let before_filter = fetched.len();
        fetched.retain(|&v| pattern.predicate(step.node).eval(graph.value(v)));
        stats.predicate_filtered += (before_filter - fetched.len()) as u64;
        candidates[step.node.index()] = fetched;
    }

    let all_nodes: Vec<NodeId> = {
        let mut v: Vec<NodeId> = candidates.iter().flatten().copied().collect();
        dedup_with_bitset(&mut v, &mut seen);
        v.sort_unstable();
        v
    };
    stats.fragment_build_nanos = started.elapsed().as_nanos() as u64;

    CandidateSet {
        candidates,
        all_nodes,
        stats,
    }
}

/// Executes `plan` for `pattern` against `indices`, materializing the
/// fragment from `graph` as an explicit [`Subgraph`].
///
/// `graph` is only used to evaluate predicates on fetched nodes and to
/// induce the fragment's edges — both bounded by the fetched node set.
/// The bounded executors of [`crate::exec`] do not go through this function:
/// they build a zero-copy [`FragmentView`](bgpq_graph::FragmentView) from
/// the crate-internal `fetch_candidates` instead.
///
/// # Panics
/// Panics if `plan` references constraints absent from `indices` (i.e. the
/// plan was built against a different schema).
pub fn execute_plan(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> FetchResult {
    let started = Instant::now();
    let fetched = fetch_candidates(plan, pattern, graph, indices);
    let fragment = Subgraph::induced(graph, fetched.all_nodes);
    let mut stats = fetched.stats;
    stats.fragment_nodes = fragment.node_count();
    stats.fragment_edges = fragment.edge_count();
    stats.fragment_build_nanos = started.elapsed().as_nanos() as u64;

    FetchResult {
        candidates: fetched.candidates,
        fragment,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_query, Semantics};
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// 2 years, 1 award, 4 movies, 2 actors each; plus 50 unrelated noise
    /// nodes that a bounded fetch must never touch.
    fn graph_with_noise() -> Graph {
        let mut b = GraphBuilder::new();
        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let aw = b.add_node("award", Value::str("Oscar"));
        for i in 0..4 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(if i % 2 == 0 { y1 } else { y2 }, m).unwrap();
            b.add_edge(aw, m).unwrap();
            for j in 0..2 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        for i in 0..50 {
            b.add_node("noise", Value::Int(i));
        }
        b.build()
    }

    fn setup() -> (Graph, AccessSchema) {
        let g = graph_with_noise();
        let year = g.interner().get("year").unwrap();
        let award = g.interner().get("award").unwrap();
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(year, 2),
            AccessConstraint::global(award, 1),
            AccessConstraint::new([year, award], movie, 2),
            AccessConstraint::unary(movie, actor, 2),
        ]);
        (g, schema)
    }

    fn movie_pattern(g: &Graph) -> Pattern {
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2011));
        let a = pb.node("award", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act);
        pb.build()
    }

    #[test]
    fn fetch_is_bounded_and_excludes_noise() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);

        // year restricted by predicate to 2011 → 2 movies → 4 actors.
        assert_eq!(fetched.candidates[1], vec![NodeId(0)]);
        assert_eq!(fetched.candidates[0].len(), 2);
        assert_eq!(fetched.candidates[3].len(), 4);
        // The fragment holds ≤ 8 of the 69 graph nodes; no noise node.
        assert!(fetched.stats.fragment_nodes <= 8);
        let noise = g.interner().get("noise").unwrap();
        for v in fetched.fragment.nodes() {
            assert_ne!(g.label(v), noise);
        }
        assert!(fetched.fragment.is_subgraph_of(&g));
        assert_eq!(
            fetched.stats.fragment_size(),
            fetched.stats.fragment_nodes + fetched.stats.fragment_edges
        );
        // Fetched nodes stay within the plan's worst-case bound.
        assert!((fetched.stats.fragment_nodes as u64) <= plan.worst_case_nodes());
    }

    #[test]
    fn lookup_count_is_product_of_key_candidates() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);
        // `index_lookups` counts *distinct* lookups issued. Here every
        // combination keys a distinct lookup, so the count is the product
        // of key-candidate set sizes: 1 (year global) + 1 (award global) +
        // 1·1 (pair keys after the year predicate cut candidates to one) +
        // 2 (one per movie) = 5, with nothing deduplicated.
        assert_eq!(fetched.stats.index_lookups, 5);
        assert_eq!(fetched.stats.lookups_deduped, 0);
    }

    /// Two same-labeled pattern nodes fetched through the same constraint
    /// repeat each other's key set; the repeats must be answered from the
    /// memo, not re-issued against the index.
    #[test]
    fn repeated_via_keys_are_looked_up_once() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2011));
        let a = pb.node("award", Predicate::always());
        let act1 = pb.node("actor", Predicate::always());
        let act2 = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act1);
        pb.edge(m, act2);
        let q = pb.build();
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);
        // year + award + 1 pair key + 2 movie→actor keys for the first
        // actor node = 5 distinct lookups; the second actor node repeats
        // the same 2 movie keys and is served from the memo.
        assert_eq!(fetched.stats.index_lookups, 5);
        assert_eq!(fetched.stats.lookups_deduped, 2);
        // Dedup never changes the answer: both actor nodes see all actors
        // of the 2011 movies.
        assert_eq!(fetched.candidates[3], fetched.candidates[4]);
        assert_eq!(fetched.candidates[3].len(), 4);
    }

    /// A memo shared across fetches (the batch path) answers the second
    /// query's overlapping lookups from memory, with identical results.
    #[test]
    fn shared_memo_feeds_overlapping_fetches() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();

        let solo = fetch_candidates(&plan, &q, &g, &indices);
        let mut memo = LookupMemo::new();
        let first = fetch_candidate_sets(&plan, &q, &g, &indices, &mut memo);
        let second = fetch_candidate_sets(&plan, &q, &g, &indices, &mut memo);

        assert_eq!(first.candidates, solo.candidates);
        assert_eq!(second.candidates, solo.candidates);
        assert_eq!(second.all_nodes, solo.all_nodes);
        assert_eq!(first.stats.index_lookups, 5);
        assert_eq!(memo.len(), 5);
        // The second pass issues nothing: every key is memoized.
        assert_eq!(second.stats.index_lookups, 0);
        assert_eq!(second.stats.lookups_deduped, 5);
        assert!(!memo.is_empty());
    }

    #[test]
    fn empty_candidates_propagate_to_empty_fragment() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 1999));
        let a = pb.node("award", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        let q = pb.build();
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);
        // No 1999 year → no movie keys → movie candidates empty.
        assert!(fetched.candidates[1].is_empty());
        assert!(fetched.candidates[0].is_empty());
        // Fragment still carries the award node (fetched by its global).
        assert_eq!(fetched.stats.fragment_nodes, 1);
    }
}
