//! Executing a fetch plan: from indices to the bounded fragment `G_Q`.
//!
//! [`execute_plan`] walks the steps of a [`QueryPlan`] in order. For each
//! pattern node it issues the index lookups the step prescribes — one lookup
//! for a global constraint, one per combination of already-fetched `via`
//! candidates otherwise — unions the answers, and filters them by the node's
//! predicate (sound: every answer node must satisfy it). The union of all
//! candidate sets induces the fragment `G_Q` in `G`, which is the only part
//! of the data graph the bounded executors of [`crate::exec`] ever look at.
//!
//! The work performed here is bounded by the plan, not by `|G|`: the number
//! of lookups is a product of constraint bounds, each answer has at most `N`
//! nodes, and building the induced [`Subgraph`] touches only the adjacency of
//! fetched nodes. [`FetchStats`] records the actual counts so experiments can
//! reproduce the paper's `|G_Q|/|G|` measurements.
//!
//! Two entry points share the lookup loop: [`execute_plan`] materializes the
//! fragment as an explicit [`Subgraph`] (inspection, tests, offline tools),
//! while the crate-internal `fetch_candidates` returns only the candidate
//! sets and their sorted union — the bounded executors of [`crate::exec`]
//! build a zero-copy [`FragmentView`](bgpq_graph::FragmentView) from that
//! union instead of ever allocating a `Subgraph` on the hot path.

use crate::plan::QueryPlan;
use bgpq_access::AccessIndexSet;
use bgpq_graph::{Graph, NodeId, Subgraph};
use bgpq_matching::seed::for_each_combination;
use bgpq_pattern::Pattern;
use std::time::Instant;

/// Counters describing one plan execution.
///
/// Deliberately **not** `PartialEq`: the struct carries the wall-clock
/// [`FetchStats::fragment_build_nanos`], so two semantically identical
/// fetches are never byte-equal. Compare the individual counters instead.
#[derive(Debug, Clone, Default)]
pub struct FetchStats {
    /// Number of index lookups issued.
    pub index_lookups: u64,
    /// Total nodes returned by lookups, before deduplication/filtering.
    pub nodes_returned: u64,
    /// Distinct fetched nodes dropped because the pattern node's predicate
    /// rejected them — a measure of how selective the query's predicates are
    /// relative to the schema's constraints.
    pub predicate_filtered: u64,
    /// Nodes in the fetched fragment `|V(G_Q)|`.
    pub fragment_nodes: usize,
    /// Edges in the fetched fragment `|E(G_Q)|`.
    pub fragment_edges: usize,
    /// Nanoseconds spent fetching candidates and building the fragment
    /// (index lookups + `Subgraph`/`FragmentView` construction). A timing,
    /// not a semantic counter: two equal fetches may differ here.
    pub fragment_build_nanos: u64,
}

impl FetchStats {
    /// `|G_Q| = |V(G_Q)| + |E(G_Q)|`.
    pub fn fragment_size(&self) -> usize {
        self.fragment_nodes + self.fragment_edges
    }
}

/// The outcome of executing a plan: per-node candidates plus the fragment.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// Sorted, deduplicated candidate set per pattern node (indexed by
    /// pattern node id).
    pub candidates: Vec<Vec<NodeId>>,
    /// The bounded fragment `G_Q`: the subgraph of `G` induced by the union
    /// of all candidate sets.
    pub fragment: Subgraph,
    /// Counters for reporting.
    pub stats: FetchStats,
}

/// The lean fetch outcome the bounded executors consume: candidate sets and
/// their sorted union, with no fragment container allocated.
#[derive(Debug, Clone)]
pub(crate) struct FetchedCandidates {
    /// Sorted, deduplicated candidate set per pattern node.
    pub candidates: Vec<Vec<NodeId>>,
    /// Sorted, deduplicated union of all candidate sets — the node set of
    /// the fragment `G_Q` those candidates induce.
    pub all_nodes: Vec<NodeId>,
    /// Counters; `fragment_nodes`/`fragment_edges`/`fragment_build_nanos`
    /// are left for the caller to fill once the fragment representation
    /// (view or subgraph) exists.
    pub stats: FetchStats,
}

/// Runs the index-lookup loop of `plan`, producing per-node candidates and
/// their union. Shared by [`execute_plan`] and the bounded executors.
///
/// # Panics
/// Panics if `plan` references constraints absent from `indices` (i.e. the
/// plan was built against a different schema).
pub(crate) fn fetch_candidates(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> FetchedCandidates {
    let n = pattern.node_count();
    let mut candidates: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stats = FetchStats::default();

    for step in &plan.steps {
        let index = indices
            .get(step.constraint)
            .expect("plan constraint must exist in the index set");
        let mut fetched: Vec<NodeId> = Vec::new();
        if step.via.is_empty() {
            stats.index_lookups += 1;
            fetched.extend_from_slice(index.common_neighbors(&[]));
        } else {
            for_each_combination(&step.via, &candidates, &mut |key| {
                stats.index_lookups += 1;
                fetched.extend_from_slice(index.common_neighbors(key));
            });
        }
        stats.nodes_returned += fetched.len() as u64;
        fetched.sort_unstable();
        fetched.dedup();
        let before_filter = fetched.len();
        fetched.retain(|&v| pattern.predicate(step.node).eval(graph.value(v)));
        stats.predicate_filtered += (before_filter - fetched.len()) as u64;
        candidates[step.node.index()] = fetched;
    }

    let all_nodes: Vec<NodeId> = {
        let mut v: Vec<NodeId> = candidates.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    FetchedCandidates {
        candidates,
        all_nodes,
        stats,
    }
}

/// Executes `plan` for `pattern` against `indices`, materializing the
/// fragment from `graph` as an explicit [`Subgraph`].
///
/// `graph` is only used to evaluate predicates on fetched nodes and to
/// induce the fragment's edges — both bounded by the fetched node set.
/// The bounded executors of [`crate::exec`] do not go through this function:
/// they build a zero-copy [`FragmentView`](bgpq_graph::FragmentView) from
/// the crate-internal `fetch_candidates` instead.
///
/// # Panics
/// Panics if `plan` references constraints absent from `indices` (i.e. the
/// plan was built against a different schema).
pub fn execute_plan(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> FetchResult {
    let started = Instant::now();
    let fetched = fetch_candidates(plan, pattern, graph, indices);
    let fragment = Subgraph::induced(graph, fetched.all_nodes);
    let mut stats = fetched.stats;
    stats.fragment_nodes = fragment.node_count();
    stats.fragment_edges = fragment.edge_count();
    stats.fragment_build_nanos = started.elapsed().as_nanos() as u64;

    FetchResult {
        candidates: fetched.candidates,
        fragment,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_query, Semantics};
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// 2 years, 1 award, 4 movies, 2 actors each; plus 50 unrelated noise
    /// nodes that a bounded fetch must never touch.
    fn graph_with_noise() -> Graph {
        let mut b = GraphBuilder::new();
        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let aw = b.add_node("award", Value::str("Oscar"));
        for i in 0..4 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(if i % 2 == 0 { y1 } else { y2 }, m).unwrap();
            b.add_edge(aw, m).unwrap();
            for j in 0..2 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        for i in 0..50 {
            b.add_node("noise", Value::Int(i));
        }
        b.build()
    }

    fn setup() -> (Graph, AccessSchema) {
        let g = graph_with_noise();
        let year = g.interner().get("year").unwrap();
        let award = g.interner().get("award").unwrap();
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(year, 2),
            AccessConstraint::global(award, 1),
            AccessConstraint::new([year, award], movie, 2),
            AccessConstraint::unary(movie, actor, 2),
        ]);
        (g, schema)
    }

    fn movie_pattern(g: &Graph) -> Pattern {
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2011));
        let a = pb.node("award", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act);
        pb.build()
    }

    #[test]
    fn fetch_is_bounded_and_excludes_noise() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);

        // year restricted by predicate to 2011 → 2 movies → 4 actors.
        assert_eq!(fetched.candidates[1], vec![NodeId(0)]);
        assert_eq!(fetched.candidates[0].len(), 2);
        assert_eq!(fetched.candidates[3].len(), 4);
        // The fragment holds ≤ 8 of the 69 graph nodes; no noise node.
        assert!(fetched.stats.fragment_nodes <= 8);
        let noise = g.interner().get("noise").unwrap();
        for v in fetched.fragment.nodes() {
            assert_ne!(g.label(v), noise);
        }
        assert!(fetched.fragment.is_subgraph_of(&g));
        assert_eq!(
            fetched.stats.fragment_size(),
            fetched.stats.fragment_nodes + fetched.stats.fragment_edges
        );
        // Fetched nodes stay within the plan's worst-case bound.
        assert!((fetched.stats.fragment_nodes as u64) <= plan.worst_case_nodes());
    }

    #[test]
    fn lookup_count_is_product_of_key_candidates() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let q = movie_pattern(&g);
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);
        // 1 (year global) + 1 (award global) + 1·1 (pair keys after the
        // year predicate cut candidates to one) + 2 (one per movie) = 5.
        assert_eq!(fetched.stats.index_lookups, 5);
    }

    #[test]
    fn empty_candidates_propagate_to_empty_fragment() {
        let (g, schema) = setup();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 1999));
        let a = pb.node("award", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        let q = pb.build();
        let plan = plan_query(&q, &schema, Semantics::Isomorphism).unwrap();
        let fetched = execute_plan(&plan, &q, &g, &indices);
        // No 1999 year → no movie keys → movie candidates empty.
        assert!(fetched.candidates[1].is_empty());
        assert!(fetched.candidates[0].is_empty());
        // Fragment still carries the award node (fetched by its global).
        assert_eq!(fetched.stats.fragment_nodes, 1);
    }
}
