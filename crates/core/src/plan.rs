//! Query plans: deciding effective boundedness and ordering the fetch.
//!
//! A pattern query `Q` is *effectively bounded* under an access schema `A`
//! when, for every graph `G |= A`, the answer `Q(G)` can be computed from a
//! fragment `G_Q ⊆ G` whose size depends only on `Q` and `A` — never on
//! `|G|`. The planner realizes the constructive side of that definition: it
//! tries to **cover** every pattern node with a constraint of the schema,
//!
//! * a type (1) constraint `∅ → (l, N)` covers any node labeled `l` outright
//!   (at most `N` candidates, fetched with one index lookup);
//! * a constraint `S → (l, N)` covers a node `u` labeled `l` once, for every
//!   source label in `S`, some *already covered* pattern node adjacent to `u`
//!   carries that label — each combination of their candidates keys one index
//!   lookup returning at most `N` nodes.
//!
//! Which adjacent nodes are eligible depends on the query semantics
//! ([`Semantics`]): an isomorphism match realizes every pattern edge, so any
//! neighbor of `u` may contribute; a simulation match only guarantees witness
//! edges towards *children* of `u`, so only children may. A query can
//! therefore be bounded for `bVF2` yet unbounded for `bSim` — mirroring the
//! paper's separate characterizations for subgraph and simulation queries.
//!
//! The closure computation is the syntactic sufficient condition of the
//! paper's coverage check: when it succeeds the resulting [`QueryPlan`] lists
//! one [`FetchStep`] per pattern node in dependency order, together with a
//! worst-case candidate bound per node; when it fails, [`PlanError`] reports
//! the uncovered nodes.

use bgpq_access::{AccessSchema, ConstraintId};
use bgpq_matching::seed::pick_via_nodes;
use bgpq_pattern::{Pattern, PatternNodeId};
use std::fmt;

/// Query semantics a plan must stay sound for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Subgraph-isomorphism queries (`bVF2`): any pattern neighbor of a node
    /// may drive its fetch.
    Isomorphism,
    /// Graph-simulation queries (`bSim`): only pattern children may.
    Simulation,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Isomorphism => write!(f, "isomorphism"),
            Semantics::Simulation => write!(f, "simulation"),
        }
    }
}

/// One step of a fetch plan: how the candidates of `node` are retrieved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchStep {
    /// The pattern node whose candidates this step fetches.
    pub node: PatternNodeId,
    /// The constraint whose index is queried.
    pub constraint: ConstraintId,
    /// Already-fetched pattern nodes providing the `S`-labeled lookup keys,
    /// aligned with the constraint's (sorted) source labels. Empty for
    /// global constraints.
    pub via: Vec<PatternNodeId>,
    /// Worst-case number of candidates this step can fetch, given the
    /// bounds of the constraints used so far (saturating).
    pub candidate_bound: u64,
}

/// A complete fetch plan: every pattern node covered, in dependency order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The semantics the plan is sound for.
    pub semantics: Semantics,
    /// One step per pattern node, topologically ordered: every `via` node of
    /// a step is fetched by an earlier step.
    pub steps: Vec<FetchStep>,
}

impl QueryPlan {
    /// Worst-case total number of fetched candidate nodes, independent of
    /// `|G|` (saturating). This is the paper's bound on `|V(G_Q)|`.
    pub fn worst_case_nodes(&self) -> u64 {
        self.steps
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.candidate_bound))
    }

    /// The constraints (hence indices) the plan uses — the paper's
    /// `|index_Q|` is the size of exactly these.
    pub fn constraints_used(&self) -> Vec<ConstraintId> {
        let mut ids: Vec<ConstraintId> = self.steps.iter().map(|s| s.constraint).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The step fetching `node`, if the plan covers it.
    pub fn step_for(&self, node: PatternNodeId) -> Option<&FetchStep> {
        self.steps.iter().find(|s| s.node == node)
    }
}

/// Why no plan exists: the query is not (syntactically) effectively bounded
/// under the schema for the requested semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The semantics that was requested.
    pub semantics: Semantics,
    /// Pattern nodes no constraint could cover.
    pub uncovered: Vec<PatternNodeId>,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nodes: Vec<String> = self.uncovered.iter().map(|u| u.to_string()).collect();
        write!(
            f,
            "query is not effectively bounded under the schema for {} semantics: \
             pattern nodes [{}] cannot be covered",
            self.semantics,
            nodes.join(", ")
        )
    }
}

impl std::error::Error for PlanError {}

/// Decides effective boundedness of `pattern` under `schema` and builds the
/// fetch plan.
///
/// Runs the coverage closure to a fixpoint; the choice of constraint and of
/// `via` nodes is deterministic (schema order, then smallest candidate
/// bound, then smallest node id).
pub fn plan_query(
    pattern: &Pattern,
    schema: &AccessSchema,
    semantics: Semantics,
) -> Result<QueryPlan, PlanError> {
    plan_query_filtered(pattern, schema, semantics, |_| true)
}

/// [`plan_query`] restricted to the constraints accepted by `usable`.
///
/// The bounded executors use this to exclude constraints whose index was
/// truncated during its build (see
/// [`ConstraintIndex::is_truncated`](bgpq_access::ConstraintIndex::is_truncated)):
/// such an index may answer "empty" for a key it dropped, so fetching
/// through it could silently lose matches. Excluding a constraint can only
/// shrink the set of bounded queries, never change an answer.
pub fn plan_query_filtered(
    pattern: &Pattern,
    schema: &AccessSchema,
    semantics: Semantics,
    usable: impl Fn(ConstraintId) -> bool,
) -> Result<QueryPlan, PlanError> {
    let n = pattern.node_count();
    let mut covered = vec![false; n];
    let mut bound = vec![0u64; n];
    let mut steps: Vec<FetchStep> = Vec::with_capacity(n);

    loop {
        let mut progressed = false;
        for u in pattern.nodes() {
            if covered[u.index()] {
                continue;
            }
            if let Some(step) = cover_node(pattern, schema, semantics, u, &covered, &bound, &usable)
            {
                bound[u.index()] = step.candidate_bound;
                covered[u.index()] = true;
                steps.push(step);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let uncovered: Vec<PatternNodeId> = pattern.nodes().filter(|u| !covered[u.index()]).collect();
    if uncovered.is_empty() {
        Ok(QueryPlan { semantics, steps })
    } else {
        Err(PlanError {
            semantics,
            uncovered,
        })
    }
}

/// Tries every constraint targeting `u`'s label, in schema order, returning
/// the first step that covers `u` from already-covered nodes.
fn cover_node(
    pattern: &Pattern,
    schema: &AccessSchema,
    semantics: Semantics,
    u: PatternNodeId,
    covered: &[bool],
    bound: &[u64],
    usable: &impl Fn(ConstraintId) -> bool,
) -> Option<FetchStep> {
    let pool: Vec<PatternNodeId> = match semantics {
        Semantics::Isomorphism => pattern.neighbors(u),
        Semantics::Simulation => pattern.children(u).to_vec(),
    };
    for (id, constraint) in schema.constraints_targeting(pattern.label(u)) {
        if !usable(id) {
            continue;
        }
        if constraint.is_global() {
            return Some(FetchStep {
                node: u,
                constraint: id,
                via: Vec::new(),
                candidate_bound: constraint.bound() as u64,
            });
        }
        let weight = |w: PatternNodeId| covered[w.index()].then(|| bound[w.index()]);
        if let Some(via) = pick_via_nodes(pattern, constraint.source(), &pool, &weight) {
            // Each combination of via-candidates keys one lookup of ≤ N
            // answers: bound(u) = N · ∏ bound(via_i).
            let combos = via
                .iter()
                .fold(1u64, |acc, w| acc.saturating_mul(bound[w.index()]));
            return Some(FetchStep {
                node: u,
                constraint: id,
                via,
                candidate_bound: combos.saturating_mul(constraint.bound() as u64),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::AccessConstraint;
    use bgpq_graph::LabelInterner;
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// The paper's running example: Q0 over the IMDb-style schema A0.
    fn q0_setup() -> (Pattern, AccessSchema) {
        let mut interner = LabelInterner::new();
        let year = interner.intern("year");
        let award = interner.intern("award");
        let movie = interner.intern("movie");
        let actor = interner.intern("actor");
        let actress = interner.intern("actress");
        let country = interner.intern("country");

        let mut b = PatternBuilder::with_interner(interner);
        let p_aw = b.node("award", Predicate::always());
        let p_y = b.node("year", Predicate::range(2011, 2013));
        let p_m = b.node("movie", Predicate::always());
        let p_ac = b.node("actor", Predicate::always());
        let p_as = b.node("actress", Predicate::always());
        let p_c = b.node("country", Predicate::always());
        b.edge(p_m, p_aw);
        b.edge(p_m, p_y);
        b.edge(p_m, p_ac);
        b.edge(p_m, p_as);
        b.edge(p_ac, p_c);
        b.edge(p_as, p_c);
        let pattern = b.build();

        // A0 from Example 3, with person split into actor/actress bounds.
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new([year, award], movie, 4),
            AccessConstraint::unary(movie, actor, 30),
            AccessConstraint::unary(movie, actress, 30),
            AccessConstraint::unary(actor, country, 1),
            AccessConstraint::unary(actress, country, 1),
            AccessConstraint::global(year, 135),
            AccessConstraint::global(award, 24),
        ]);
        (pattern, schema)
    }

    #[test]
    fn q0_is_bounded_under_a0_for_isomorphism() {
        let (q, a) = q0_setup();
        let plan = plan_query(&q, &a, Semantics::Isomorphism).expect("Q0 is bounded under A0");
        assert_eq!(plan.steps.len(), q.node_count());
        // Every via node is fetched by an earlier step.
        for (i, step) in plan.steps.iter().enumerate() {
            for w in &step.via {
                assert!(
                    plan.steps[..i].iter().any(|s| s.node == *w),
                    "step {i} uses unfetched via node {w}"
                );
            }
        }
        // The movie step keys the (year, award) pair index.
        let movie_step = plan.step_for(bgpq_pattern::PatternNodeId(2)).unwrap();
        assert_eq!(movie_step.constraint, ConstraintId(0));
        assert_eq!(movie_step.via.len(), 2);
        // Worst case: 135 + 24 + 135·24·4 + fanouts — finite and |G|-free.
        assert!(plan.worst_case_nodes() > 0);
        assert!(!plan.constraints_used().is_empty());
    }

    #[test]
    fn q0_is_not_bounded_for_simulation_under_a0() {
        // For simulation, each node may only be fetched through children.
        // movie still works (year and award are its children and globally
        // covered), but actor/actress can only be reached through their
        // parent movie, and country has no children at all — the closure
        // stalls with those three uncovered.
        let (q, a) = q0_setup();
        let err = plan_query(&q, &a, Semantics::Simulation).unwrap_err();
        use bgpq_pattern::PatternNodeId;
        assert_eq!(
            err.uncovered,
            vec![PatternNodeId(3), PatternNodeId(4), PatternNodeId(5)]
        );
        assert!(err.to_string().contains("simulation"));
    }

    #[test]
    fn missing_constraint_reports_uncovered_nodes() {
        let (q, _) = q0_setup();
        let empty = AccessSchema::new();
        let err = plan_query(&q, &empty, Semantics::Isomorphism).unwrap_err();
        assert_eq!(err.uncovered.len(), q.node_count());
        assert!(err.to_string().contains("not effectively bounded"));
    }

    #[test]
    fn empty_pattern_has_empty_plan() {
        let q = PatternBuilder::new().build();
        let plan = plan_query(&q, &AccessSchema::new(), Semantics::Simulation).unwrap();
        assert!(plan.steps.is_empty());
        assert_eq!(plan.worst_case_nodes(), 0);
    }

    #[test]
    fn simulation_plans_through_children() {
        // Pattern a -> b. Schema: global(b), b → (a, N). For simulation,
        // a's child b drives the fetch: every simulating a-node has a
        // b-child witness.
        let mut interner = LabelInterner::new();
        let la = interner.intern("a");
        let lb = interner.intern("b");
        let mut pb = PatternBuilder::with_interner(interner);
        let pa = pb.node("a", Predicate::always());
        let pbn = pb.node("b", Predicate::always());
        pb.edge(pa, pbn);
        let q = pb.build();

        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(lb, 7),
            AccessConstraint::unary(lb, la, 3),
        ]);
        let plan = plan_query(&q, &schema, Semantics::Simulation).unwrap();
        assert_eq!(plan.steps.len(), 2);
        let a_step = plan.step_for(bgpq_pattern::PatternNodeId(0)).unwrap();
        assert_eq!(a_step.via, vec![bgpq_pattern::PatternNodeId(1)]);
        assert_eq!(a_step.candidate_bound, 21); // 7 keys × 3 answers

        // The reverse schema (global(a), a → (b, N)) covers b only for
        // isomorphism, not for simulation.
        let reverse = AccessSchema::from_constraints([
            AccessConstraint::global(la, 7),
            AccessConstraint::unary(la, lb, 3),
        ]);
        assert!(plan_query(&q, &reverse, Semantics::Isomorphism).is_ok());
        assert!(plan_query(&q, &reverse, Semantics::Simulation).is_err());
    }

    #[test]
    fn deterministic_plans() {
        let (q, a) = q0_setup();
        let p1 = plan_query(&q, &a, Semantics::Isomorphism).unwrap();
        let p2 = plan_query(&q, &a, Semantics::Isomorphism).unwrap();
        assert_eq!(p1, p2);
    }
}
