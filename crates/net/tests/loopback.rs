//! Loopback integration: real TCP connections against a [`NetServer`].
//!
//! These tests prove the wire protocol is lossless (answers received over
//! TCP equal direct [`Server::execute`] on the same snapshot), that
//! admission control produces the typed `overloaded` / `draining`
//! rejections, that drain lets in-flight queries finish, and that client
//! deadlines map onto deterministic step budgets with the documented blame
//! rule (deadline-derived abort → `budget_exceeded` error; explicit-budget
//! abort → truncated answer with `aborted` set).

use bgpq_engine::{
    parse_pattern, AccessConstraint, AccessSchema, BudgetPolicy, QueryAnswer, QueryRequest,
    Semantics, StrategyKind,
};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use bgpq_net::{
    AnswerKind, Client, ErrorCode, NetServer, NetServerConfig, NetServerHandle, QuerySpec,
};
use bgpq_serve::{Server, Update};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// IMDb-shaped fixture: `movies` clusters of (year, award) → movie → actors.
fn fixture(movies: usize) -> (Graph, AccessSchema) {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..10)
        .map(|i| b.add_node("year", Value::Int(2000 + i)))
        .collect();
    let awards: Vec<_> = (0..3)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    for i in 0..movies {
        let m = b.add_node("movie", Value::Int(i as i64));
        b.add_edge(years[i % years.len()], m).unwrap();
        b.add_edge(awards[i % awards.len()], m).unwrap();
        for j in 0..2 {
            let a = b.add_node("actor", Value::Int((10 * i + j) as i64));
            b.add_edge(m, a).unwrap();
        }
    }
    let g = b.build();
    let l = |name: &str| g.interner().get(name).unwrap();
    let schema = AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 10),
        AccessConstraint::global(l("award"), 3),
        AccessConstraint::new([l("year"), l("award")], l("movie"), movies),
        AccessConstraint::unary(l("movie"), l("actor"), 4),
    ]);
    (g, schema)
}

const YEAR_QUERY: &str = "node y: year where value = 2003\n\
                          node m: movie\n\
                          node a: actor\n\
                          edge y -> m\n\
                          edge m -> a\n";

fn start(movies: usize, config: NetServerConfig) -> NetServerHandle {
    let (graph, schema) = fixture(movies);
    let server = Arc::new(Server::new(graph, &schema));
    NetServer::start(server, config).expect("bind loopback")
}

fn connect(handle: &NetServerHandle, name: &str) -> Client {
    Client::connect(handle.local_addr(), name).expect("connect")
}

#[test]
fn tcp_answers_equal_direct_execution() {
    let handle = start(40, NetServerConfig::default());
    let mut client = connect(&handle, "parity");

    for (semantics, strategy) in [
        (Semantics::Isomorphism, None),
        (Semantics::Isomorphism, Some(StrategyKind::Baseline)),
        (Semantics::Simulation, None),
    ] {
        let mut spec = QuerySpec::new(YEAR_QUERY);
        spec.semantics = semantics;
        spec.strategy = strategy;
        let outcome = client.query(&spec).expect("query over TCP");

        // Direct execution on the same snapshot version.
        let snapshot = handle.server().snapshot();
        assert_eq!(outcome.header.snapshot_version, snapshot.version());
        let pattern =
            parse_pattern(YEAR_QUERY, snapshot.graph().interner().clone()).expect("pattern");
        let mut builder = QueryRequest::build(pattern.clone()).semantics(semantics);
        if let Some(kind) = strategy {
            builder = builder.strategy(kind);
        }
        let direct = snapshot.execute(&builder.finish()).expect("direct");
        assert_eq!(outcome.header.strategy, direct.strategy.to_string());

        match (&direct.answer, outcome.header.kind) {
            (QueryAnswer::Matches(matches), AnswerKind::Matches) => {
                assert_eq!(outcome.header.total as usize, matches.len());
                assert_eq!(outcome.matches.len(), matches.len());
                // Every row carries the same bindings, in canonical order.
                for (wire_row, direct_row) in outcome.matches.iter().zip(matches.iter()) {
                    let direct_ids: Vec<u32> =
                        pattern.nodes().map(|u| direct_row.node_for(u).0).collect();
                    let wire_ids: Vec<u32> = wire_row.iter().map(|b| b.id).collect();
                    assert_eq!(wire_ids, direct_ids);
                }
            }
            (QueryAnswer::Simulation(relation), AnswerKind::Simulation) => {
                assert_eq!(outcome.header.total as usize, relation.pair_count());
                for (index, u) in pattern.nodes().enumerate() {
                    let mut direct_ids: Vec<u32> =
                        relation.matches_of(u).iter().map(|v| v.0).collect();
                    direct_ids.sort_unstable();
                    let mut wire_ids: Vec<u32> = outcome
                        .sim
                        .iter()
                        .filter(|c| c.node_index == index as u32)
                        .flat_map(|c| c.ids.iter().copied())
                        .collect();
                    wire_ids.sort_unstable();
                    assert_eq!(wire_ids, direct_ids, "node index {index}");
                }
            }
            (answer, kind) => panic!("kind mismatch: direct {answer:?} vs wire {kind:?}"),
        }
        assert!(!outcome.done.aborted);
    }
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn concurrent_clients_and_writer_see_consistent_snapshots() {
    let handle = start(30, NetServerConfig::default());
    let addr = handle.local_addr();

    let readers: Vec<_> = (0..3)
        .map(|r| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("reader-{r}")).expect("connect");
                let mut last_version = 0u64;
                for round in 0..12 {
                    let mut spec = QuerySpec::new(YEAR_QUERY);
                    spec.semantics = if round % 2 == 0 {
                        Semantics::Isomorphism
                    } else {
                        Semantics::Simulation
                    };
                    let outcome = client.query(&spec).expect("query");
                    assert!(
                        outcome.header.snapshot_version >= last_version,
                        "versions went backwards"
                    );
                    last_version = outcome.header.snapshot_version;
                    assert!(outcome.header.total > 0, "fixture always has matches");
                }
                client.goodbye().unwrap();
            })
        })
        .collect();

    // A writer commits through the same protocol while the readers run.
    let mut writer = connect(&handle, "writer");
    let mut version = 0;
    for i in 0..6 {
        let summary = writer
            .update(&[Update::AddNode {
                label: "actor".into(),
                value: Value::Int(9_000 + i),
            }])
            .expect("commit");
        assert!(summary.version > version, "commit bumps the epoch");
        version = summary.version;
        assert_eq!(summary.new_nodes.len(), 1);
    }
    writer.goodbye().unwrap();

    for reader in readers {
        reader.join().expect("reader thread");
    }
    assert_eq!(handle.server().version(), 6);
    assert!(handle.shutdown());
}

#[test]
fn zero_capacity_gate_rejects_with_overloaded() {
    let config = NetServerConfig {
        max_in_flight: 0,
        ..NetServerConfig::default()
    };
    let handle = start(5, config);
    let mut client = connect(&handle, "rejected");

    let err = client.query(&QuerySpec::new(YEAR_QUERY)).unwrap_err();
    match &err {
        bgpq_net::ClientError::Server {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*code, ErrorCode::Overloaded);
            assert!(retry_after_ms.is_some(), "overloaded carries a retry hint");
        }
        other => panic!("expected server rejection, got {other:?}"),
    }
    assert!(err.is_retryable());

    // The session survives a rejection: ping still answers.
    assert_eq!(client.ping().unwrap(), 0);

    // Updates pass the same gate.
    let err = client
        .update(&[Update::AddNode {
            label: "actor".into(),
            value: Value::Int(1),
        }])
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Overloaded));
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn drain_finishes_in_flight_queries_and_rejects_new_ones() {
    let handle = start(400, NetServerConfig::default());
    let addr = handle.local_addr();

    // Continuous query traffic: each thread queries in a loop until it is
    // turned away by the drain. Every completed query must be a *full*
    // answer — drain may reject new work, never truncate admitted work.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("looper-{w}")).expect("connect");
                let mut successes = 0u64;
                loop {
                    let mut spec = QuerySpec::new(YEAR_QUERY);
                    spec.strategy = Some(StrategyKind::Baseline);
                    match client.query(&spec) {
                        Ok(outcome) => {
                            assert!(outcome.header.total > 0, "admitted answers are complete");
                            assert!(!outcome.done.aborted);
                            successes += 1;
                        }
                        Err(err) => {
                            assert_eq!(
                                err.code(),
                                Some(ErrorCode::Draining),
                                "the only rejection a draining server hands out"
                            );
                            assert!(err.is_retryable());
                            break;
                        }
                    }
                }
                client.goodbye().unwrap();
                successes
            })
        })
        .collect();

    // Wait until work is verifiably in flight, then drain underneath it.
    let started = Instant::now();
    while handle.in_flight() == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "queries never became in-flight"
        );
        std::thread::yield_now();
    }
    handle.drain();
    assert!(handle.is_draining());

    let successes: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread"))
        .sum();
    assert!(successes > 0, "queries admitted before the drain completed");

    // New sessions are turned away too, but non-admitted requests (ping,
    // stats, goodbye) stay available on a draining server.
    let mut late = connect(&handle, "late");
    let err = late.query(&QuerySpec::new(YEAR_QUERY)).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Draining));
    late.ping().unwrap();
    late.goodbye().unwrap();

    let stats = handle.gate_stats();
    assert_eq!(stats.admitted, successes);
    assert!(
        stats.rejected_draining >= 5,
        "four loopers + the late client"
    );
    assert_eq!(handle.in_flight(), 0, "drain left nothing in flight");
    assert!(handle.shutdown(), "drained server shuts down cleanly");
}

#[test]
fn deadline_derived_abort_is_a_budget_exceeded_error() {
    // One step per millisecond with a floor of one: a 1 ms deadline buys a
    // single matcher step, which cannot finish any query on the fixture.
    let config = NetServerConfig {
        budget_policy: BudgetPolicy {
            steps_per_milli: 1,
            floor_steps: 1,
        },
        ..NetServerConfig::default()
    };
    let handle = start(20, config);
    let mut client = connect(&handle, "deadline");

    let mut spec = QuerySpec::new(YEAR_QUERY);
    spec.deadline_ms = Some(1);
    let err = client.query(&spec).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BudgetExceeded));
    assert!(
        !err.is_retryable(),
        "a longer deadline is a client decision"
    );
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn explicit_budget_abort_returns_a_truncated_answer() {
    let handle = start(20, NetServerConfig::default());
    let mut client = connect(&handle, "budgeted");

    // The client asked for this budget explicitly, so exhaustion is a
    // truncated answer (aborted flag set), not an error.
    let mut spec = QuerySpec::new(YEAR_QUERY);
    spec.step_budget = Some(1);
    let outcome = client.query(&spec).expect("truncated answer");
    assert!(outcome.done.aborted);

    // Even with a deadline attached, the tighter explicit budget takes the
    // blame: still an answer, not a budget_exceeded error.
    spec.deadline_ms = Some(60_000);
    let outcome = client.query(&spec).expect("explicit budget wins blame");
    assert!(outcome.done.aborted);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn zero_deadline_is_a_parse_error_and_the_session_survives() {
    let handle = start(10, NetServerConfig::default());
    let mut client = connect(&handle, "zero-deadline");

    // `deadline_ms: 0` is rejected at wire decode, before admission — it
    // would otherwise silently round up to the 1 ms engine floor.
    let mut spec = QuerySpec::new(YEAR_QUERY);
    spec.deadline_ms = Some(0);
    let err = client.query(&spec).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Parse));
    let message = err.to_string();
    assert!(message.contains("deadline_ms"), "got: {message}");

    // In a batch the error names the offending slot.
    let batch = vec![QuerySpec::new(YEAR_QUERY), spec.clone()];
    let err = client.batch(&batch).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Parse));
    assert!(err.to_string().contains("batch query 1"), "got: {err}");

    // The session survives both rejections, and the smallest legal
    // deadline goes through.
    assert_eq!(client.ping().unwrap(), 0);
    spec.deadline_ms = Some(1);
    let outcome = client.query(&spec).expect("1 ms deadline is legal");
    assert!(outcome.header.total > 0);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn batch_answers_equal_sequential_queries() {
    let handle = start(40, NetServerConfig::default());
    let mut client = connect(&handle, "batcher");

    let mut specs = Vec::new();
    for year in [2001, 2003, 2003, 2007] {
        specs.push(QuerySpec::new(format!(
            "node y: year where value = {year}\n\
             node m: movie\n\
             node a: actor\n\
             edge y -> m\n\
             edge m -> a\n"
        )));
    }
    let mut sim = QuerySpec::new(YEAR_QUERY);
    sim.semantics = Semantics::Simulation;
    specs.push(sim);

    let batched = client.batch(&specs).expect("batch over TCP");
    assert_eq!(batched.len(), specs.len());
    let version = batched[0].as_ref().unwrap().header.snapshot_version;
    for (spec, outcome) in specs.iter().zip(&batched) {
        let outcome = outcome.as_ref().expect("batch slot succeeded");
        // The whole batch ran on one snapshot...
        assert_eq!(outcome.header.snapshot_version, version);
        // ...and each slot's answer equals the same query run alone.
        let alone = client.query(spec).expect("sequential query");
        assert_eq!(outcome.header.kind, alone.header.kind);
        assert_eq!(outcome.header.strategy, alone.header.strategy);
        assert_eq!(outcome.header.total, alone.header.total);
        assert_eq!(outcome.matches, alone.matches);
        assert_eq!(outcome.sim, alone.sim);
        assert!(!outcome.done.aborted);
    }
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn batch_slot_failures_leave_other_slots_intact() {
    let handle = start(10, NetServerConfig::default());
    let mut client = connect(&handle, "mixed-batch");

    // An empty batch is rejected at decode.
    let err = client.batch(&[]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Parse));

    let specs = vec![
        QuerySpec::new(YEAR_QUERY),
        QuerySpec::new("edge ghost -> nowhere\n"),
        QuerySpec::new(YEAR_QUERY),
    ];
    let outcomes = client.batch(&specs).expect("batch itself is admitted");
    assert_eq!(outcomes.len(), 3);
    assert_eq!(
        outcomes[1].as_ref().unwrap_err().code(),
        Some(ErrorCode::BadPattern),
        "the bad slot fails alone"
    );
    for slot in [0, 2] {
        let outcome = outcomes[slot].as_ref().expect("good slots answered");
        assert!(outcome.header.total > 0);
        assert!(!outcome.done.aborted);
    }

    // The session is still fully usable afterwards.
    let outcome = client.query(&QuerySpec::new(YEAR_QUERY)).unwrap();
    assert!(outcome.header.total > 0);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn stats_document_counts_requests_and_clients() {
    let handle = start(10, NetServerConfig::default());
    let mut client = connect(&handle, "metrics");

    assert_eq!(client.ping().unwrap(), 0);
    client.query(&QuerySpec::new(YEAR_QUERY)).unwrap();
    let stats = client.stats().expect("stats document");

    let server = stats.get("server").expect("server object");
    assert_eq!(server.get("protocol").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(server.get("queries").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(server.get("admitted").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        server.get("draining").and_then(|v| v.as_bool()),
        Some(false)
    );
    let latency = server.get("latency_us").expect("latency object");
    assert_eq!(latency.get("count").and_then(|v| v.as_u64()), Some(1));
    assert!(latency.get("p99").and_then(|v| v.as_u64()).unwrap() >= 1);

    let clients = stats.get("clients").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(clients.len(), 1);
    assert_eq!(
        clients[0].get("name").and_then(|v| v.as_str()),
        Some("metrics")
    );
    assert!(client.bytes_in() > 0 && client.bytes_out() > 0);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn committed_updates_are_visible_to_later_queries() {
    let handle = start(10, NetServerConfig::default());
    let mut client = connect(&handle, "updater");

    let before = client.query(&QuerySpec::new(YEAR_QUERY)).unwrap();

    // Add one movie in year 2003 with one actor: movie node + actor node,
    // wired to the existing year-2003 node (fixture id 3).
    let next = handle.server().snapshot().graph().node_count() as u32;
    let summary = client
        .update(&[
            Update::AddNode {
                label: "movie".into(),
                value: Value::Int(777),
            },
            Update::AddNode {
                label: "actor".into(),
                value: Value::Int(778),
            },
            Update::AddEdge {
                src: NodeId(3),
                dst: NodeId(next),
            },
            Update::AddEdge {
                src: NodeId(next),
                dst: NodeId(next + 1),
            },
        ])
        .expect("commit");
    assert_eq!(summary.new_nodes, vec![next, next + 1]);

    let after = client.query(&QuerySpec::new(YEAR_QUERY)).unwrap();
    assert_eq!(after.header.snapshot_version, summary.version);
    assert_eq!(after.header.total, before.header.total + 1);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}
