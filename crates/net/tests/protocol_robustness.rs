//! Hostile-peer robustness: raw [`TcpStream`] bytes against a live server.
//!
//! The frame reader and session loop must survive anything a confused or
//! malicious client can send — garbage bytes, absurd length prefixes,
//! truncated frames, corrupted payloads, mid-stream disconnects and
//! slow-loris dribbles — by answering with a typed protocol error or
//! closing cleanly. Never by panicking: every test ends by running a real
//! query through a well-behaved [`Client`], proving the server is still
//! alive and correct after the abuse.

use bgpq_engine::{AccessConstraint, AccessSchema, StrategyKind};
use bgpq_graph::{Graph, GraphBuilder, Value};
use bgpq_net::{
    Client, ErrorCode, NetServer, NetServerConfig, NetServerHandle, QuerySpec, Response,
    PROTOCOL_VERSION,
};
use bgpq_serve::Server;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (Graph, AccessSchema) {
    let mut b = GraphBuilder::new();
    let y = b.add_node("year", Value::Int(2003));
    for i in 0..4 {
        let m = b.add_node("movie", Value::Int(i));
        b.add_edge(y, m).unwrap();
    }
    let g = b.build();
    let l = |name: &str| g.interner().get(name).unwrap();
    let schema = AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 1),
        AccessConstraint::unary(l("year"), l("movie"), 4),
    ]);
    (g, schema)
}

fn start(read_timeout: Option<Duration>) -> NetServerHandle {
    let (graph, schema) = fixture();
    let config = NetServerConfig {
        read_timeout,
        ..NetServerConfig::default()
    };
    NetServer::start(Arc::new(Server::new(graph, &schema)), config).expect("bind")
}

// ---- raw wire helpers (independent of the crate's frame module) --------

fn send_frame(stream: &mut TcpStream, payload: &str) {
    let bytes = payload.as_bytes();
    stream
        .write_all(&(bytes.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
}

/// Reads one response frame; `None` means the server closed the stream.
fn recv_frame(stream: &mut TcpStream) -> Option<Response> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(_) => return None,
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    let text = String::from_utf8(body).expect("server frames are valid UTF-8");
    Some(Response::decode(&text).expect("server frames decode"))
}

/// The stream should be closed: the next read yields EOF (or a reset, which
/// is equally "closed" from the peer's perspective).
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("expected close, got {n} more bytes"),
        Err(e)
            if e.kind() == std::io::ErrorKind::ConnectionReset
                || e.kind() == std::io::ErrorKind::ConnectionAborted => {}
        Err(e) => panic!("expected close, got {e}"),
    }
}

fn connect_raw(handle: &NetServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

fn hello(stream: &mut TcpStream) {
    send_frame(
        stream,
        &format!("{{\"type\":\"hello\",\"protocol\":{PROTOCOL_VERSION},\"client\":\"raw\"}}"),
    );
    match recv_frame(stream) {
        Some(Response::HelloAck { .. }) => {}
        other => panic!("expected hello ack, got {other:?}"),
    }
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    match recv_frame(stream) {
        Some(Response::Error { code: got, .. }) => assert_eq!(got, code),
        other => panic!("expected {code} error, got {other:?}"),
    }
}

/// The liveness probe every test ends with: a fresh well-behaved client
/// still gets a correct answer.
fn assert_server_alive(handle: &NetServerHandle) {
    let mut client = Client::connect(handle.local_addr(), "prober").expect("connect");
    let outcome = client
        .query(&QuerySpec::new(
            "node y: year\nnode m: movie\nedge y -> m\n",
        ))
        .expect("probe query");
    assert_eq!(outcome.header.total, 4);
    client.goodbye().unwrap();
}

// ---- the abuse ---------------------------------------------------------

#[test]
fn garbage_preamble_is_rejected_without_panic() {
    let handle = start(None);
    // An HTTP request: the first four bytes ("GET ") decode as a ~1.2 GB
    // length prefix, which must be rejected before any allocation.
    let mut stream = connect_raw(&handle);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_error(&mut stream, ErrorCode::TooLarge);
    assert_closed(&mut stream);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let handle = start(None);
    let mut stream = connect_raw(&handle);
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    expect_error(&mut stream, ErrorCode::TooLarge);
    assert_closed(&mut stream);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn truncated_frame_then_disconnect_closes_cleanly() {
    let handle = start(None);
    let mut stream = connect_raw(&handle);
    // Claim 100 bytes, deliver 10, vanish.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"0123456789").unwrap();
    drop(stream);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn corrupted_payload_bytes_yield_protocol_error() {
    let handle = start(None);
    let mut stream = connect_raw(&handle);
    hello(&mut stream);
    // A valid query frame with one byte flipped into an invalid UTF-8
    // continuation: framing survives, decoding fails, session closes.
    let mut payload = b"{\"type\":\"query\",\"pattern\":\"node y: year\"}".to_vec();
    payload[20] = 0xFF;
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&payload).unwrap();
    expect_error(&mut stream, ErrorCode::Protocol);
    assert_closed(&mut stream);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn undecodable_json_after_handshake_keeps_the_session() {
    let handle = start(None);
    let mut stream = connect_raw(&handle);
    hello(&mut stream);
    // Valid UTF-8, invalid request: a typed parse error, and the session
    // keeps going — the next (valid) ping is answered.
    send_frame(&mut stream, "this is not json");
    expect_error(&mut stream, ErrorCode::Parse);
    send_frame(&mut stream, "{\"type\":\"transmogrify\"}");
    expect_error(&mut stream, ErrorCode::Parse);
    send_frame(&mut stream, "{\"type\":\"ping\"}");
    match recv_frame(&mut stream) {
        Some(Response::Pong { .. }) => {}
        other => panic!("expected pong, got {other:?}"),
    }
    drop(stream);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn handshake_violations_close_with_protocol_error() {
    let handle = start(None);

    // Wrong protocol version.
    let mut stream = connect_raw(&handle);
    send_frame(
        &mut stream,
        "{\"type\":\"hello\",\"protocol\":999,\"client\":\"fut\"}",
    );
    expect_error(&mut stream, ErrorCode::Protocol);
    assert_closed(&mut stream);

    // A request before any hello.
    let mut stream = connect_raw(&handle);
    send_frame(&mut stream, "{\"type\":\"ping\"}");
    expect_error(&mut stream, ErrorCode::Protocol);
    assert_closed(&mut stream);

    // A second hello mid-session.
    let mut stream = connect_raw(&handle);
    hello(&mut stream);
    send_frame(
        &mut stream,
        &format!("{{\"type\":\"hello\",\"protocol\":{PROTOCOL_VERSION},\"client\":\"again\"}}"),
    );
    expect_error(&mut stream, ErrorCode::Protocol);
    assert_closed(&mut stream);

    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn slow_loris_writer_is_disconnected_by_the_read_timeout() {
    let handle = start(Some(Duration::from_millis(100)));
    let mut stream = connect_raw(&handle);
    hello(&mut stream);
    // Dribble the first byte of a length prefix, then stall well past the
    // read timeout: the server hangs up (quietly or with a protocol error)
    // instead of holding the session forever. Any read outcome other than
    // payload bytes arriving indefinitely — EOF, an error frame followed by
    // EOF, or a reset — proves the disconnect.
    stream.write_all(&[0u8]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert_server_alive(&handle);
    assert!(handle.shutdown());
}

#[test]
fn semantic_rejections_keep_the_session_open() {
    let handle = start(None);
    let mut client = Client::connect(handle.local_addr(), "semantic").expect("connect");

    // A pattern that fails to parse.
    let err = client
        .query(&QuerySpec::new("node ???\nthis is no pattern"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadPattern));

    // A pattern the schema cannot bound, with the bounded tier forced: the
    // paper's "not effectively bounded" refusal arrives as a typed error.
    let mut spec = QuerySpec::new("node m: movie\n");
    spec.strategy = Some(StrategyKind::Bounded);
    let err = client.query(&spec).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Unbounded));
    assert!(!err.is_retryable());

    // Same session still answers good queries.
    let outcome = client
        .query(&QuerySpec::new(
            "node y: year\nnode m: movie\nedge y -> m\n",
        ))
        .expect("recovery query");
    assert_eq!(outcome.header.total, 4);
    client.goodbye().unwrap();
    assert!(handle.shutdown());
}

#[test]
fn empty_and_tiny_frames_are_survivable() {
    let handle = start(None);
    let mut stream = connect_raw(&handle);
    // A zero-length frame is valid framing but an empty payload: the
    // handshake decoder rejects it and closes.
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    match recv_frame(&mut stream) {
        Some(Response::Error { .. }) | None => {}
        other => panic!("expected error or close, got {other:?}"),
    }
    drop(stream);

    // Disconnecting with nothing sent at all is a quiet no-op.
    drop(connect_raw(&handle));

    assert_server_alive(&handle);
    assert!(handle.shutdown());
}
