//! Open-loop TCP serving benchmark: latency percentiles and reject rate
//! versus offered load, over real loopback connections.
//!
//! Unlike the closed-loop `bench_serve` (which measures peak throughput by
//! letting each worker issue the next query the moment the previous one
//! returns), this bench fixes an *offered* arrival rate per tier and
//! schedules request arrivals on a strict clock, independent of how fast
//! the server answers. Latency is measured from the **scheduled arrival**,
//! not the send, so queueing delay under overload is visible instead of
//! being absorbed by a coordinating sender (no coordinated omission). More
//! sender connections than the admission gate's `max_in_flight` are kept
//! open, so pushing the offered rate past capacity produces typed
//! `overloaded` rejections — the reject rate per tier is the admission
//! control story in one number.
//!
//! Results merge into `BENCH_serve.json` under a `"tcp"` key (run
//! `bench_serve` first for the closed-loop section, then this binary).
//!
//! ```sh
//! cargo run --release -p bgpq-net --bin bench_net            # full run
//! cargo run --release -p bgpq-net --bin bench_net -- --smoke # CI smoke
//! ```

use bgpq_engine::{AccessConstraint, AccessSchema};
use bgpq_graph::{Graph, GraphBuilder, Value};
use bgpq_net::{Client, ErrorCode, LatencyHistogram, NetServer, NetServerConfig, QuerySpec};
use bgpq_serve::Server;
use bgpq_workload::ArrivalClock;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

struct BenchConfig {
    /// Movie clusters in the generated base graph.
    movies: usize,
    /// Offered-load tiers, in queries per second.
    offered: Vec<u64>,
    /// Measurement window per tier.
    duration_ms: u64,
    /// Sender connections (more than `max_in_flight`, so overload tiers
    /// can actually trip the admission gate).
    connections: usize,
    /// Worker threads of the served pool.
    workers: usize,
    /// Admission gate capacity.
    max_in_flight: usize,
    /// Report path to merge the `"tcp"` section into.
    out: String,
}

impl BenchConfig {
    fn parse(args: &[String]) -> Result<Self, String> {
        let smoke = args.iter().any(|a| a == "--smoke");
        let mut config = if smoke {
            BenchConfig {
                movies: 300,
                offered: vec![100, 500, 2_000],
                duration_ms: 200,
                connections: 12,
                workers: 2,
                max_in_flight: 8,
                out: "BENCH_serve.json".to_string(),
            }
        } else {
            BenchConfig {
                movies: 2_000,
                offered: vec![200, 1_000, 4_000, 16_000],
                duration_ms: 500,
                connections: 12,
                workers: 2,
                max_in_flight: 8,
                out: "BENCH_serve.json".to_string(),
            }
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} expects a value"))
            };
            match arg.as_str() {
                "--smoke" => {}
                "--movies" => config.movies = parse_num(&value_for("--movies")?)?,
                "--offered" => {
                    config.offered = value_for("--offered")?
                        .split(',')
                        .map(|s| parse_num(s).map(|n| n as u64))
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--duration-ms" => {
                    config.duration_ms = parse_num(&value_for("--duration-ms")?)? as u64
                }
                "--connections" => config.connections = parse_num(&value_for("--connections")?)?,
                "--workers" => config.workers = parse_num(&value_for("--workers")?)?,
                "--max-in-flight" => {
                    config.max_in_flight = parse_num(&value_for("--max-in-flight")?)?
                }
                "--out" => config.out = value_for("--out")?,
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if config.offered.is_empty() || config.duration_ms == 0 || config.connections == 0 {
            return Err("--offered, --duration-ms and --connections must be non-empty".into());
        }
        Ok(config)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

/// The IMDb-shaped base graph shared with `bench_serve`: `movies` clusters,
/// each a movie linked from a (year, award) pair and to 2 actors.
fn build_graph(movies: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..20)
        .map(|i| b.add_node("year", Value::Int(2000 + i)))
        .collect();
    let awards: Vec<_> = (0..5)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    for i in 0..movies {
        let m = b.add_node("movie", Value::Int(i as i64));
        b.add_edge(years[i % years.len()], m).unwrap();
        b.add_edge(awards[i % awards.len()], m).unwrap();
        for j in 0..2 {
            let a = b.add_node("actor", Value::Int((10 * i + j) as i64));
            b.add_edge(m, a).unwrap();
        }
    }
    b.build()
}

fn build_schema(graph: &Graph, movies: usize) -> AccessSchema {
    let l = |name: &str| graph.interner().get(name).unwrap();
    AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 20),
        AccessConstraint::global(l("award"), 5),
        AccessConstraint::new([l("year"), l("award")], l("movie"), movies / 10 + 10),
        AccessConstraint::unary(l("movie"), l("actor"), 4),
    ])
}

/// The textual pattern each sender rotates through (one per base year).
fn query_text(year: i64) -> String {
    format!(
        "node m: movie\nnode y: year where value = {year}\nnode a: actor\n\
         edge y -> m\nedge m -> a\n"
    )
}

struct TierResult {
    offered_qps: u64,
    scheduled: u64,
    completed: u64,
    rejected: u64,
    achieved_qps: f64,
    latency: LatencyHistogram,
}

/// One open-loop tier: arrivals on a strict clock at `offered` per second,
/// spread round-robin over the sender connections.
fn run_tier(addr: std::net::SocketAddr, config: &BenchConfig, offered: u64) -> TierResult {
    let duration = Duration::from_millis(config.duration_ms);
    // A small lead lets every sender connect before arrival 0 is due.
    let clock = ArrivalClock::new(offered, duration, Duration::from_millis(5));
    let connections = config.connections;

    let senders: Vec<_> = (0..connections)
        .map(|c| {
            thread::spawn(move || {
                let mut client =
                    Client::connect(addr, &format!("bench-{c}")).expect("connect sender");
                let specs: Vec<QuerySpec> = (0..5)
                    .map(|i| QuerySpec::new(query_text(2000 + ((c + i) % 20) as i64)))
                    .collect();
                let mut latency = LatencyHistogram::new();
                let (mut completed, mut rejected, mut scheduled) = (0u64, 0u64, 0u64);
                // This sender owns arrivals c, c+C, c+2C, …
                let mut i = c as u64;
                while let Some(arrival) = clock.wait_for(i) {
                    scheduled += 1;
                    match client.query(&specs[(i as usize / connections) % specs.len()]) {
                        Ok(_) => {
                            completed += 1;
                            latency.record(arrival.elapsed().as_micros() as u64);
                        }
                        Err(e) if e.code() == Some(ErrorCode::Overloaded) => rejected += 1,
                        Err(e) => panic!("sender {c}: {e}"),
                    }
                    i += connections as u64;
                }
                client.goodbye().expect("goodbye");
                (completed, rejected, scheduled, latency)
            })
        })
        .collect();

    let mut result = TierResult {
        offered_qps: offered,
        scheduled: 0,
        completed: 0,
        rejected: 0,
        achieved_qps: 0.0,
        latency: LatencyHistogram::new(),
    };
    for sender in senders {
        let (completed, rejected, scheduled, latency) = sender.join().expect("sender panicked");
        result.completed += completed;
        result.rejected += rejected;
        result.scheduled += scheduled;
        result.latency.merge(&latency);
    }
    result.achieved_qps = result.completed as f64 / duration.as_secs_f64();
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match BenchConfig::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_net: {e}");
            eprintln!(
                "usage: bench_net [--smoke] [--movies N] [--offered Q1,Q2,..] \
                 [--duration-ms D] [--connections C] [--workers W] \
                 [--max-in-flight M] [--out PATH]"
            );
            std::process::exit(2);
        }
    };

    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let graph = build_graph(config.movies);
    let schema = build_schema(&graph, config.movies);
    println!(
        "base graph: {} nodes, {} edges; {} cores available",
        graph.node_count(),
        graph.edge_count(),
        cores
    );
    let server = Arc::new(Server::new(graph, &schema));
    let handle = NetServer::start(
        Arc::clone(&server),
        NetServerConfig {
            workers: config.workers,
            max_in_flight: config.max_in_flight,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.local_addr();

    let tiers: Vec<TierResult> = config
        .offered
        .iter()
        .map(|&offered| {
            let tier = run_tier(addr, &config, offered);
            println!(
                "offered {:>6} qps: {:>6.0} achieved, {:>5} rejected ({:.1}%), \
                 p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
                tier.offered_qps,
                tier.achieved_qps,
                tier.rejected,
                100.0 * tier.rejected as f64 / tier.scheduled.max(1) as f64,
                tier.latency.quantile(0.5) as f64 / 1_000.0,
                tier.latency.quantile(0.95) as f64 / 1_000.0,
                tier.latency.quantile(0.99) as f64 / 1_000.0,
            );
            tier
        })
        .collect();
    assert!(handle.shutdown(), "bench server drains cleanly");

    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "      {{\"offered_qps\": {}, \"scheduled\": {}, \"completed\": {}, \
                 \"rejected\": {}, \"reject_rate\": {:.4}, \"achieved_qps\": {:.0}, \
                 \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \
                 \"max\": {}}}}}",
                t.offered_qps,
                t.scheduled,
                t.completed,
                t.rejected,
                t.rejected as f64 / t.scheduled.max(1) as f64,
                t.achieved_qps,
                t.latency.quantile(0.5),
                t.latency.quantile(0.95),
                t.latency.quantile(0.99),
                t.latency.mean(),
                t.latency.max(),
            )
        })
        .collect();
    let tcp_json = format!(
        "{{\n    \"config\": {{\"movies\": {}, \"duration_ms\": {}, \"connections\": {}, \
         \"workers\": {}, \"max_in_flight\": {}, \"cores\": {}}},\n    \"tiers\": [\n{}\n    ]\n  }}",
        config.movies,
        config.duration_ms,
        config.connections,
        config.workers,
        config.max_in_flight,
        cores,
        tier_json.join(",\n")
    );

    // Merge into the closed-loop report: replace an existing `"tcp"`
    // section, or append one before the closing brace.
    let report = match std::fs::read_to_string(&config.out) {
        Ok(text) => match text.find("\"tcp\":") {
            Some(idx) => format!("{}\"tcp\": {tcp_json}\n}}\n", &text[..idx]),
            None => {
                let base = text
                    .trim_end()
                    .strip_suffix('}')
                    .expect("report ends with a JSON object")
                    .trim_end();
                format!("{base},\n  \"tcp\": {tcp_json}\n}}\n")
            }
        },
        Err(_) => format!("{{\n  \"tcp\": {tcp_json}\n}}\n"),
    };
    std::fs::write(&config.out, &report).expect("write bench report");
    println!("report -> {} (tcp section)", config.out);
}
