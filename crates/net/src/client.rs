//! The blocking client: one connection, typed calls.
//!
//! [`Client::connect`] performs the handshake; afterwards each method is
//! one request/response exchange ([`Client::query`] additionally drains
//! the streamed answer frames into a [`QueryOutcome`]). Server-sent
//! protocol errors surface as [`ClientError::Server`] with their typed
//! [`ErrorCode`](crate::proto::ErrorCode), so callers can branch on
//! `overloaded`/`draining` (retry) vs their own mistakes (don't).

use crate::error::ClientError;
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use crate::proto::{
    AnswerHeader, DoneFrame, MatchBinding, QuerySpec, Request, Response, SimChunk, PROTOCOL_VERSION,
};
use bgpq_graph::io::json::Json;
use bgpq_serve::Update;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A fully received streamed answer.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer header (kind, strategy, snapshot version, total).
    pub header: AnswerHeader,
    /// Match rows, in the server's canonical order (isomorphism answers).
    pub matches: Vec<Vec<MatchBinding>>,
    /// Simulation chunks, in arrival order (simulation answers).
    pub sim: Vec<SimChunk>,
    /// The final frame: abort flag, stats, optional explain lines.
    pub done: DoneFrame,
}

/// What a committed update batch did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// The published snapshot epoch.
    pub version: u64,
    /// Low-level deltas applied.
    pub deltas: u64,
    /// Ids assigned to `AddNode` updates, in batch order.
    pub new_nodes: Vec<u32>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: u32,
    server: String,
    epoch: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl Client {
    /// Connects to `addr` and performs the handshake, announcing
    /// `client_name` (the key the server files this session's counters
    /// under).
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            server: String::new(),
            epoch: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        client.send(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })?;
        match client.recv()? {
            Response::HelloAck { server, epoch, .. } => {
                client.server = server;
                client.epoch = epoch;
                Ok(client)
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after_ms,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected hello_ack, got {other:?}"
            ))),
        }
    }

    /// The server's self-identification from the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// The most recently observed snapshot epoch (handshake, `ping`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total on-wire bytes received so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total on-wire bytes sent so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Sets the socket read timeout for subsequent calls.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = request.encode().map_err(ClientError::Protocol)?;
        self.bytes_out += write_frame(&mut self.writer, &payload)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let (payload, bytes) = read_frame(&mut self.reader, self.max_frame_bytes)?;
        self.bytes_in += bytes;
        Response::decode(&payload).map_err(ClientError::Protocol)
    }

    fn server_error(
        code: crate::proto::ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    ) -> ClientError {
        ClientError::Server {
            code,
            message,
            retry_after_ms,
        }
    }

    /// Runs one query, draining the streamed answer.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<QueryOutcome, ClientError> {
        self.send(&Request::Query(spec.clone()))?;
        let header = match self.recv()? {
            Response::Answer(header) => header,
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => return Err(Self::server_error(code, message, retry_after_ms)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected an answer header, got {other:?}"
                )))
            }
        };
        self.drain_answer(header)
    }

    /// Drains one streamed answer (`answer` … `rows*` … `done`) whose
    /// header has already been received.
    fn drain_answer(&mut self, header: AnswerHeader) -> Result<QueryOutcome, ClientError> {
        let mut matches = Vec::new();
        let mut sim = Vec::new();
        loop {
            match self.recv()? {
                Response::MatchRows(rows) => matches.extend(rows),
                Response::SimRows(chunks) => sim.extend(chunks),
                Response::Done(done) => {
                    return Ok(QueryOutcome {
                        header,
                        matches,
                        sim,
                        done,
                    })
                }
                Response::Error {
                    code,
                    message,
                    retry_after_ms,
                } => return Err(Self::server_error(code, message, retry_after_ms)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected rows or done, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Runs a batch of queries in one round trip. The server executes them
    /// on a single snapshot, sharing index lookups across the batch, and
    /// streams one reply sequence per query in request order.
    ///
    /// The outer `Result` covers whole-batch failures (rejection at
    /// admission, transport errors); the inner per-slot `Result`s carry
    /// each query's own outcome, so one bad query does not lose the rest.
    pub fn batch(
        &mut self,
        specs: &[QuerySpec],
    ) -> Result<Vec<Result<QueryOutcome, ClientError>>, ClientError> {
        self.send(&Request::Batch(specs.to_vec()))?;
        let count = match self.recv()? {
            Response::BatchStart { count } => count,
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => return Err(Self::server_error(code, message, retry_after_ms)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected batch_start, got {other:?}"
                )))
            }
        };
        if count != specs.len() as u64 {
            return Err(ClientError::Protocol(format!(
                "batch_start announced {count} replies for {} queries",
                specs.len()
            )));
        }
        let mut outcomes = Vec::with_capacity(specs.len());
        for _ in 0..count {
            match self.recv()? {
                Response::Answer(header) => outcomes.push(self.drain_answer(header)),
                Response::Error {
                    code,
                    message,
                    retry_after_ms,
                } => outcomes.push(Err(Self::server_error(code, message, retry_after_ms))),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected an answer header or error, got {other:?}"
                    )))
                }
            }
        }
        Ok(outcomes)
    }

    /// Commits a batch of updates.
    pub fn update(&mut self, updates: &[Update]) -> Result<CommitSummary, ClientError> {
        self.send(&Request::Update(updates.to_vec()))?;
        match self.recv()? {
            Response::Committed {
                version,
                deltas,
                new_nodes,
            } => {
                self.epoch = version;
                Ok(CommitSummary {
                    version,
                    deltas,
                    new_nodes,
                })
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => Err(Self::server_error(code, message, retry_after_ms)),
            other => Err(ClientError::Protocol(format!(
                "expected committed, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counters document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(stats) => Ok(stats),
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => Err(Self::server_error(code, message, retry_after_ms)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Liveness probe; returns (and remembers) the current snapshot epoch.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong { epoch } => {
                self.epoch = epoch;
                Ok(epoch)
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => Err(Self::server_error(code, message, retry_after_ms)),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Ends the session with an orderly goodbye exchange.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Request::Goodbye)?;
        match self.recv()? {
            Response::GoodbyeAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected goodbye_ack, got {other:?}"
            ))),
        }
    }
}
