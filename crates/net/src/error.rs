//! Client-side error type: transport faults and server-sent protocol
//! errors, kept distinct so callers can branch on retryability.

use crate::frame::FrameError;
use crate::proto::ErrorCode;
use std::io;

/// What went wrong on a [`Client`](crate::Client) call.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure.
    Io(io::Error),
    /// A framing failure (truncated, oversized, non-UTF-8, closed).
    Frame(FrameError),
    /// The server sent something this client cannot interpret (undecodable
    /// payload, or a response type that does not fit the pending request).
    Protocol(String),
    /// The server answered with a typed protocol error.
    Server {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
        /// Back-off hint for retryable codes.
        retry_after_ms: Option<u64>,
    },
}

impl ClientError {
    /// The server-sent error code, when this is a [`ClientError::Server`].
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// True when retrying the same request later may succeed (the server
    /// said `overloaded` or `draining`).
    pub fn is_retryable(&self) -> bool {
        self.code().is_some_and(ErrorCode::is_retryable)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server {
                code,
                message,
                retry_after_ms,
            } => {
                write!(f, "server error [{code}]: {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_code() {
        let overloaded = ClientError::Server {
            code: ErrorCode::Overloaded,
            message: "busy".into(),
            retry_after_ms: Some(5),
        };
        assert!(overloaded.is_retryable());
        assert_eq!(overloaded.code(), Some(ErrorCode::Overloaded));
        assert!(overloaded.to_string().contains("retry after 5 ms"));

        let parse = ClientError::Server {
            code: ErrorCode::Parse,
            message: "bad".into(),
            retry_after_ms: None,
        };
        assert!(!parse.is_retryable());
        assert!(ClientError::Protocol("x".into()).code().is_none());
    }
}
