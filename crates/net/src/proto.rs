//! The typed protocol: request/response messages and their JSON encoding.
//!
//! Every frame payload is one JSON object with a `"type"` discriminator.
//! Encoding and decoding go through `bgpq_graph::io::json` — the same
//! dependency-free JSON the dataset loaders use — so the workspace has
//! exactly one JSON implementation on both sides of the socket.
//!
//! Decoding is total: any malformed payload becomes a typed
//! `Err(String)` which sessions answer with [`ErrorCode::Parse`] rather
//! than dropping the connection, so clients can always tell their own
//! mistakes (`parse`, `bad_pattern`, `unbounded`...) from server-side
//! conditions (`overloaded`, `draining`, `internal`). See
//! `docs/PROTOCOL.md` for the normative spec.

use bgpq_engine::{Semantics, StrategyKind, Value};
use bgpq_graph::io::json::{parse_json, Json};
use bgpq_serve::Update;

/// The protocol version this build speaks. A server receiving a `hello`
/// with a different version answers [`ErrorCode::Protocol`] and closes;
/// bumping this constant is a wire-breaking change (see the versioning
/// rules in `docs/PROTOCOL.md`).
pub const PROTOCOL_VERSION: u64 = 1;

/// Typed protocol error codes, so clients can distinguish their own fault
/// from the server's state without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Framing or session-state violation (bad handshake, request before
    /// `hello`, unsupported protocol version). The server closes after
    /// sending this.
    Protocol,
    /// The payload was not valid JSON or not a well-formed request.
    Parse,
    /// A frame exceeded the server's size limit. The server closes after
    /// sending this (the stream position is unrecoverable).
    TooLarge,
    /// The query's pattern text failed to parse.
    BadPattern,
    /// The pattern is not effectively bounded under the server's access
    /// schema and the request forced the bounded strategy.
    Unbounded,
    /// The request forced a strategy the server cannot run for it.
    StrategyUnavailable,
    /// An update batch was rejected (e.g. an edge endpoint does not exist);
    /// no change was published.
    BadUpdate,
    /// The deadline-derived step budget was exhausted before the query
    /// completed; no partial answer is returned for deadline overruns.
    BudgetExceeded,
    /// The admission gate's in-flight cap is reached; retry after the hint.
    Overloaded,
    /// The server is draining (shutdown or maintenance); in-flight work
    /// completes but new requests are rejected.
    Draining,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::BadPattern => "bad_pattern",
            ErrorCode::Unbounded => "unbounded",
            ErrorCode::StrategyUnavailable => "strategy_unavailable",
            ErrorCode::BadUpdate => "bad_update",
            ErrorCode::BudgetExceeded => "budget_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name back into a code.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "protocol" => ErrorCode::Protocol,
            "parse" => ErrorCode::Parse,
            "too_large" => ErrorCode::TooLarge,
            "bad_pattern" => ErrorCode::BadPattern,
            "unbounded" => ErrorCode::Unbounded,
            "strategy_unavailable" => ErrorCode::StrategyUnavailable,
            "bad_update" => ErrorCode::BadUpdate,
            "budget_exceeded" => ErrorCode::BudgetExceeded,
            "overloaded" => ErrorCode::Overloaded,
            "draining" => ErrorCode::Draining,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// True when the client may usefully retry the same request later.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::Draining)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One query as specified over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The textual pattern (the `bgpq-pattern::parse` syntax).
    pub pattern: String,
    /// Query semantics.
    pub semantics: Semantics,
    /// Forced strategy, `None` for automatic selection.
    pub strategy: Option<StrategyKind>,
    /// Stop after this many matches.
    pub max_matches: Option<usize>,
    /// Explicit step budget (deterministic time budget).
    pub step_budget: Option<u64>,
    /// Wall-clock deadline in milliseconds, mapped onto a step budget by
    /// the server's [`BudgetPolicy`](bgpq_engine::BudgetPolicy).
    pub deadline_ms: Option<u64>,
    /// Request the fetch plan / fallback reason alongside the answer.
    pub explain: bool,
}

impl QuerySpec {
    /// A spec with defaults (isomorphism, auto strategy, no budgets).
    pub fn new(pattern: impl Into<String>) -> Self {
        QuerySpec {
            pattern: pattern.into(),
            semantics: Semantics::Isomorphism,
            strategy: None,
            max_matches: None,
            step_budget: None,
            deadline_ms: None,
            explain: false,
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session handshake; must be the first frame on a connection.
    Hello {
        /// The protocol version the client speaks.
        protocol: u64,
        /// Self-reported client name, the key for per-client stats.
        client: String,
    },
    /// Evaluate a pattern query.
    Query(QuerySpec),
    /// Evaluate several pattern queries as one unit: the server pins one
    /// snapshot for all of them (every answer reports the same epoch) and
    /// executes them through the engine's batch path, which shares index
    /// lookups between the queries' fetches. Answers stream back in request
    /// order, each as its own `answer`/`rows*`/`done` (or `error`) sequence
    /// after an initial `batch_start` frame.
    Batch(Vec<QuerySpec>),
    /// Commit a batch of graph updates.
    Update(Vec<Update>),
    /// Fetch server and per-client counters.
    Stats,
    /// Liveness probe; answered with the current epoch.
    Ping,
    /// Orderly session end; the server acknowledges and closes.
    Goodbye,
}

/// One binding of a match row: a pattern node resolved to a data node,
/// with display strings so a graph-less client renders answers exactly
/// like a local `bgpq query`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchBinding {
    /// Pattern-node display name (`node_name` or the `u{i}` placeholder).
    pub node: String,
    /// The matched data node id.
    pub id: u32,
    /// The data node's label name.
    pub label: String,
    /// The data node's attribute value, `Display`-rendered.
    pub value: String,
}

/// One streamed chunk of a simulation answer: part of the match list of a
/// single pattern node (chunks of one node arrive in order and are
/// concatenated by the client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimChunk {
    /// Index of the pattern node this chunk belongs to.
    pub node_index: u32,
    /// Pattern-node display name.
    pub node: String,
    /// The pattern node's label name.
    pub label: String,
    /// Total matches of this pattern node (repeated on every chunk).
    pub total: u64,
    /// The data node ids of this chunk.
    pub ids: Vec<u32>,
}

/// The shape of a streamed answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerKind {
    /// Isomorphism: match rows follow.
    Matches,
    /// Simulation: per-pattern-node chunks follow.
    Simulation,
}

/// The first frame of a streamed answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerHeader {
    /// What the row frames contain.
    pub kind: AnswerKind,
    /// `Display` rendering of the strategy that ran (e.g.
    /// `"bounded (bVF2/bSim)"`), used verbatim by clients.
    pub strategy: String,
    /// The snapshot epoch the answer was computed on.
    pub snapshot_version: u64,
    /// Total answer items (matches, or `(u, v)` pairs for simulation).
    pub total: u64,
}

/// Execution statistics carried on the final frame of an answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Planning nanoseconds (including the cache probe).
    pub plan_nanos: u64,
    /// Fragment fetch+build nanoseconds (0 unless bounded ran).
    pub fragment_build_nanos: u64,
    /// Matcher nanoseconds.
    pub match_nanos: u64,
    /// End-to-end engine nanoseconds.
    pub total_nanos: u64,
    /// Fragment size `|G_Q|` in nodes, when the bounded strategy ran.
    pub fragment_nodes: Option<u64>,
    /// The plan's worst-case node bound, when the pattern was bounded.
    pub worst_case_nodes: Option<u64>,
}

/// The final frame of a streamed answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DoneFrame {
    /// True when an *explicit* step budget stopped the matcher early; the
    /// delivered answer may be incomplete. (Deadline overruns are reported
    /// as [`ErrorCode::BudgetExceeded`] instead.)
    pub aborted: bool,
    /// Execution statistics.
    pub stats: WireStats,
    /// Pre-rendered explain lines, present iff the request asked for them.
    pub explain: Option<Vec<String>>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement.
    HelloAck {
        /// The protocol version the server speaks.
        protocol: u64,
        /// Server software identification.
        server: String,
        /// The current snapshot epoch.
        epoch: u64,
    },
    /// Opens the reply to a [`Request::Batch`]: exactly `count` per-query
    /// reply sequences follow, in request order.
    BatchStart {
        /// Number of queries in the batch (and of reply sequences to come).
        count: u64,
    },
    /// First frame of a streamed answer.
    Answer(AnswerHeader),
    /// Match rows (isomorphism answers), in canonical order.
    MatchRows(Vec<Vec<MatchBinding>>),
    /// Simulation chunks.
    SimRows(Vec<SimChunk>),
    /// Last frame of a streamed answer.
    Done(DoneFrame),
    /// An update batch was committed.
    Committed {
        /// The published epoch.
        version: u64,
        /// Low-level deltas applied.
        deltas: u64,
        /// Ids assigned to `AddNode` updates, in batch order.
        new_nodes: Vec<u32>,
    },
    /// Server/per-client counters as a JSON document (schema in
    /// `docs/PROTOCOL.md`; kept as [`Json`] so new counters never break old
    /// clients).
    Stats(Json),
    /// Liveness answer.
    Pong {
        /// The current snapshot epoch.
        epoch: u64,
    },
    /// Orderly close acknowledgement.
    GoodbyeAck,
    /// A typed failure for the request (or, for [`ErrorCode::Protocol`] /
    /// [`ErrorCode::TooLarge`], for the connection).
    Error {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// When to retry, for retryable codes.
        retry_after_ms: Option<u64>,
    },
}

fn semantics_name(s: Semantics) -> &'static str {
    match s {
        Semantics::Isomorphism => "iso",
        Semantics::Simulation => "sim",
    }
}

fn parse_semantics(name: &str) -> Result<Semantics, String> {
    match name {
        "iso" => Ok(Semantics::Isomorphism),
        "sim" => Ok(Semantics::Simulation),
        other => Err(format!("unknown semantics {other:?} (iso or sim)")),
    }
}

fn strategy_name(s: StrategyKind) -> &'static str {
    match s {
        StrategyKind::Bounded => "bounded",
        StrategyKind::IndexSeeded => "seeded",
        StrategyKind::Baseline => "baseline",
    }
}

fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    match name {
        "bounded" => Ok(StrategyKind::Bounded),
        "seeded" => Ok(StrategyKind::IndexSeeded),
        "baseline" => Ok(StrategyKind::Baseline),
        other => Err(format!(
            "unknown strategy {other:?} (bounded, seeded or baseline)"
        )),
    }
}

fn value_to_json(value: &Value) -> Result<Json, String> {
    Ok(match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(x) if x.is_finite() => Json::Float(*x),
        Value::Float(_) => return Err("non-finite float values cannot travel as JSON".into()),
        Value::Str(s) => Json::Str(s.clone()),
    })
}

fn json_to_value(json: &Json) -> Result<Value, String> {
    Ok(match json {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(i) => Value::Int(*i),
        Json::Float(x) => Value::Float(*x),
        Json::Str(s) => Value::Str(s.clone()),
        other => return Err(format!("a value cannot be a JSON {}", other.type_name())),
    })
}

// ---- field access helpers (decode side) --------------------------------

fn req_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn opt_bool(obj: &Json, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("field {key:?} must be a boolean")),
    }
}

fn req_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], String> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field {key:?}"))
}

// ---- requests ----------------------------------------------------------

fn update_to_json(update: &Update) -> Result<Json, String> {
    Ok(match update {
        Update::AddNode { label, value } => Json::obj([
            ("op", Json::str("add_node")),
            ("label", Json::str(label.clone())),
            ("value", value_to_json(value)?),
        ]),
        Update::AddEdge { src, dst } => Json::obj([
            ("op", Json::str("add_edge")),
            ("src", Json::Int(src.0 as i64)),
            ("dst", Json::Int(dst.0 as i64)),
        ]),
        Update::RemoveEdge { src, dst } => Json::obj([
            ("op", Json::str("remove_edge")),
            ("src", Json::Int(src.0 as i64)),
            ("dst", Json::Int(dst.0 as i64)),
        ]),
        Update::RemoveNode { node } => Json::obj([
            ("op", Json::str("remove_node")),
            ("node", Json::Int(node.0 as i64)),
        ]),
    })
}

fn node_id(obj: &Json, key: &str) -> Result<bgpq_engine::NodeId, String> {
    let raw = req_u64(obj, key)?;
    u32::try_from(raw)
        .map(bgpq_engine::NodeId)
        .map_err(|_| format!("field {key:?} exceeds the u32 node-id range"))
}

fn update_from_json(json: &Json) -> Result<Update, String> {
    match req_str(json, "op")? {
        "add_node" => Ok(Update::AddNode {
            label: req_str(json, "label")?.to_string(),
            value: json_to_value(
                json.get("value")
                    .ok_or_else(|| "missing field \"value\"".to_string())?,
            )?,
        }),
        "add_edge" => Ok(Update::AddEdge {
            src: node_id(json, "src")?,
            dst: node_id(json, "dst")?,
        }),
        "remove_edge" => Ok(Update::RemoveEdge {
            src: node_id(json, "src")?,
            dst: node_id(json, "dst")?,
        }),
        "remove_node" => Ok(Update::RemoveNode {
            node: node_id(json, "node")?,
        }),
        other => Err(format!("unknown update op {other:?}")),
    }
}

/// The fields of one query spec, shared by `query` frames (plus a `type`
/// discriminator) and the elements of a `batch` frame's `queries` array.
fn query_spec_fields(spec: &QuerySpec) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("pattern".to_string(), Json::str(spec.pattern.clone())),
        (
            "semantics".to_string(),
            Json::str(semantics_name(spec.semantics)),
        ),
    ];
    if let Some(kind) = spec.strategy {
        fields.push(("strategy".to_string(), Json::str(strategy_name(kind))));
    }
    if let Some(n) = spec.max_matches {
        fields.push(("max_matches".to_string(), Json::Int(n as i64)));
    }
    if let Some(n) = spec.step_budget {
        fields.push(("step_budget".to_string(), Json::Int(n as i64)));
    }
    if let Some(n) = spec.deadline_ms {
        fields.push(("deadline_ms".to_string(), Json::Int(n as i64)));
    }
    if spec.explain {
        fields.push(("explain".to_string(), Json::Bool(true)));
    }
    fields
}

/// Decodes the query-spec fields of a `query` frame or a `batch` element.
/// `deadline_ms: 0` is rejected here, uniformly for both: zero milliseconds
/// cannot be honored (the budget mapping rounds sub-millisecond deadlines
/// up, so 0 would silently buy a full millisecond of steps) — clients that
/// want "as little work as possible" should send `step_budget` instead.
fn query_spec_from_json(json: &Json) -> Result<QuerySpec, String> {
    let semantics = match json.get("semantics") {
        None | Some(Json::Null) => Semantics::Isomorphism,
        Some(v) => parse_semantics(
            v.as_str()
                .ok_or_else(|| "field \"semantics\" must be a string".to_string())?,
        )?,
    };
    let strategy = match json.get("strategy") {
        None | Some(Json::Null) => None,
        Some(v) => {
            Some(parse_strategy(v.as_str().ok_or_else(|| {
                "field \"strategy\" must be a string".to_string()
            })?)?)
        }
    };
    let deadline_ms = opt_u64(json, "deadline_ms")?;
    if deadline_ms == Some(0) {
        return Err(
            "field \"deadline_ms\" must be at least 1 (use \"step_budget\" to bound work \
             deterministically)"
                .to_string(),
        );
    }
    Ok(QuerySpec {
        pattern: req_str(json, "pattern")?.to_string(),
        semantics,
        strategy,
        max_matches: opt_u64(json, "max_matches")?.map(|n| n as usize),
        step_budget: opt_u64(json, "step_budget")?,
        deadline_ms,
        explain: opt_bool(json, "explain")?,
    })
}

impl Request {
    /// Encodes this request as a frame payload.
    pub fn encode(&self) -> Result<String, String> {
        let json = match self {
            Request::Hello { protocol, client } => Json::obj([
                ("type", Json::str("hello")),
                ("protocol", Json::Int(*protocol as i64)),
                ("client", Json::str(client.clone())),
            ]),
            Request::Query(spec) => {
                let mut fields = vec![("type".to_string(), Json::str("query"))];
                fields.extend(query_spec_fields(spec));
                Json::Obj(fields)
            }
            Request::Batch(specs) => Json::obj([
                ("type", Json::str("batch")),
                (
                    "queries",
                    Json::Arr(
                        specs
                            .iter()
                            .map(|spec| Json::Obj(query_spec_fields(spec)))
                            .collect(),
                    ),
                ),
            ]),
            Request::Update(updates) => Json::obj([
                ("type", Json::str("update")),
                (
                    "updates",
                    Json::Arr(
                        updates
                            .iter()
                            .map(update_to_json)
                            .collect::<Result<_, _>>()?,
                    ),
                ),
            ]),
            Request::Stats => Json::obj([("type", Json::str("stats"))]),
            Request::Ping => Json::obj([("type", Json::str("ping"))]),
            Request::Goodbye => Json::obj([("type", Json::str("goodbye"))]),
        };
        Ok(json.render())
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &str) -> Result<Request, String> {
        let json = parse_json(payload).map_err(|e| format!("invalid JSON: {e}"))?;
        match req_str(&json, "type")? {
            "hello" => Ok(Request::Hello {
                protocol: req_u64(&json, "protocol")?,
                client: req_str(&json, "client")?.to_string(),
            }),
            "query" => Ok(Request::Query(query_spec_from_json(&json)?)),
            "batch" => {
                let specs = req_arr(&json, "queries")?
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| {
                        query_spec_from_json(spec).map_err(|e| format!("batch query {i}: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if specs.is_empty() {
                    return Err("a batch must contain at least one query".to_string());
                }
                Ok(Request::Batch(specs))
            }
            "update" => Ok(Request::Update(
                req_arr(&json, "updates")?
                    .iter()
                    .map(update_from_json)
                    .collect::<Result<_, _>>()?,
            )),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "goodbye" => Ok(Request::Goodbye),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

// ---- responses ---------------------------------------------------------

fn binding_to_json(b: &MatchBinding) -> Json {
    Json::obj([
        ("node", Json::str(b.node.clone())),
        ("id", Json::Int(b.id as i64)),
        ("label", Json::str(b.label.clone())),
        ("value", Json::str(b.value.clone())),
    ])
}

fn binding_from_json(json: &Json) -> Result<MatchBinding, String> {
    Ok(MatchBinding {
        node: req_str(json, "node")?.to_string(),
        id: req_u64(json, "id")? as u32,
        label: req_str(json, "label")?.to_string(),
        value: req_str(json, "value")?.to_string(),
    })
}

fn opt_u64_json(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Int(n as i64),
        None => Json::Null,
    }
}

impl Response {
    /// Encodes this response as a frame payload.
    pub fn encode(&self) -> String {
        let json = match self {
            Response::HelloAck {
                protocol,
                server,
                epoch,
            } => Json::obj([
                ("type", Json::str("hello_ack")),
                ("protocol", Json::Int(*protocol as i64)),
                ("server", Json::str(server.clone())),
                ("epoch", Json::Int(*epoch as i64)),
            ]),
            Response::BatchStart { count } => Json::obj([
                ("type", Json::str("batch_start")),
                ("count", Json::Int(*count as i64)),
            ]),
            Response::Answer(header) => Json::obj([
                ("type", Json::str("answer")),
                (
                    "kind",
                    Json::str(match header.kind {
                        AnswerKind::Matches => "matches",
                        AnswerKind::Simulation => "simulation",
                    }),
                ),
                ("strategy", Json::str(header.strategy.clone())),
                (
                    "snapshot_version",
                    Json::Int(header.snapshot_version as i64),
                ),
                ("total", Json::Int(header.total as i64)),
            ]),
            Response::MatchRows(rows) => Json::obj([
                ("type", Json::str("rows")),
                (
                    "matches",
                    Json::Arr(
                        rows.iter()
                            .map(|row| Json::Arr(row.iter().map(binding_to_json).collect()))
                            .collect(),
                    ),
                ),
            ]),
            Response::SimRows(chunks) => Json::obj([
                ("type", Json::str("rows")),
                (
                    "sim",
                    Json::Arr(
                        chunks
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("node_index", Json::Int(c.node_index as i64)),
                                    ("node", Json::str(c.node.clone())),
                                    ("label", Json::str(c.label.clone())),
                                    ("total", Json::Int(c.total as i64)),
                                    (
                                        "ids",
                                        Json::Arr(
                                            c.ids.iter().map(|&v| Json::Int(v as i64)).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Done(done) => {
                let mut fields = vec![
                    ("type".to_string(), Json::str("done")),
                    ("aborted".to_string(), Json::Bool(done.aborted)),
                    (
                        "stats".to_string(),
                        Json::obj([
                            ("plan_nanos", Json::Int(done.stats.plan_nanos as i64)),
                            (
                                "fragment_build_nanos",
                                Json::Int(done.stats.fragment_build_nanos as i64),
                            ),
                            ("match_nanos", Json::Int(done.stats.match_nanos as i64)),
                            ("total_nanos", Json::Int(done.stats.total_nanos as i64)),
                            ("fragment_nodes", opt_u64_json(done.stats.fragment_nodes)),
                            (
                                "worst_case_nodes",
                                opt_u64_json(done.stats.worst_case_nodes),
                            ),
                        ]),
                    ),
                ];
                if let Some(lines) = &done.explain {
                    fields.push((
                        "explain".to_string(),
                        Json::Arr(lines.iter().map(|l| Json::str(l.clone())).collect()),
                    ));
                }
                Json::Obj(fields)
            }
            Response::Committed {
                version,
                deltas,
                new_nodes,
            } => Json::obj([
                ("type", Json::str("committed")),
                ("version", Json::Int(*version as i64)),
                ("deltas", Json::Int(*deltas as i64)),
                (
                    "new_nodes",
                    Json::Arr(new_nodes.iter().map(|&v| Json::Int(v as i64)).collect()),
                ),
            ]),
            Response::Stats(stats) => {
                Json::obj([("type", Json::str("stats")), ("stats", stats.clone())])
            }
            Response::Pong { epoch } => Json::obj([
                ("type", Json::str("pong")),
                ("epoch", Json::Int(*epoch as i64)),
            ]),
            Response::GoodbyeAck => Json::obj([("type", Json::str("goodbye_ack"))]),
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Json::str("error")),
                    ("code".to_string(), Json::str(code.as_str())),
                    ("message".to_string(), Json::str(message.clone())),
                ];
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_string(), Json::Int(*ms as i64)));
                }
                Json::Obj(fields)
            }
        };
        json.render()
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &str) -> Result<Response, String> {
        let json = parse_json(payload).map_err(|e| format!("invalid JSON: {e}"))?;
        match req_str(&json, "type")? {
            "hello_ack" => Ok(Response::HelloAck {
                protocol: req_u64(&json, "protocol")?,
                server: req_str(&json, "server")?.to_string(),
                epoch: req_u64(&json, "epoch")?,
            }),
            "batch_start" => Ok(Response::BatchStart {
                count: req_u64(&json, "count")?,
            }),
            "answer" => Ok(Response::Answer(AnswerHeader {
                kind: match req_str(&json, "kind")? {
                    "matches" => AnswerKind::Matches,
                    "simulation" => AnswerKind::Simulation,
                    other => return Err(format!("unknown answer kind {other:?}")),
                },
                strategy: req_str(&json, "strategy")?.to_string(),
                snapshot_version: req_u64(&json, "snapshot_version")?,
                total: req_u64(&json, "total")?,
            })),
            "rows" => {
                if let Some(matches) = json.get("matches") {
                    let rows = matches
                        .as_arr()
                        .ok_or_else(|| "field \"matches\" must be an array".to_string())?
                        .iter()
                        .map(|row| {
                            row.as_arr()
                                .ok_or_else(|| "a match row must be an array".to_string())?
                                .iter()
                                .map(binding_from_json)
                                .collect::<Result<Vec<_>, _>>()
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(Response::MatchRows(rows));
                }
                let chunks = req_arr(&json, "sim")?
                    .iter()
                    .map(|c| {
                        Ok(SimChunk {
                            node_index: req_u64(c, "node_index")? as u32,
                            node: req_str(c, "node")?.to_string(),
                            label: req_str(c, "label")?.to_string(),
                            total: req_u64(c, "total")?,
                            ids: req_arr(c, "ids")?
                                .iter()
                                .map(|v| {
                                    v.as_u64().map(|n| n as u32).ok_or_else(|| {
                                        "simulation ids must be non-negative integers".to_string()
                                    })
                                })
                                .collect::<Result<Vec<_>, String>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::SimRows(chunks))
            }
            "done" => {
                let stats = json
                    .get("stats")
                    .ok_or_else(|| "missing field \"stats\"".to_string())?;
                let explain = match json.get("explain") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_arr()
                            .ok_or_else(|| "field \"explain\" must be an array".to_string())?
                            .iter()
                            .map(|l| {
                                l.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "explain lines must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    ),
                };
                Ok(Response::Done(DoneFrame {
                    aborted: opt_bool(&json, "aborted")?,
                    stats: WireStats {
                        plan_nanos: req_u64(stats, "plan_nanos")?,
                        fragment_build_nanos: req_u64(stats, "fragment_build_nanos")?,
                        match_nanos: req_u64(stats, "match_nanos")?,
                        total_nanos: req_u64(stats, "total_nanos")?,
                        fragment_nodes: opt_u64(stats, "fragment_nodes")?,
                        worst_case_nodes: opt_u64(stats, "worst_case_nodes")?,
                    },
                    explain,
                }))
            }
            "committed" => Ok(Response::Committed {
                version: req_u64(&json, "version")?,
                deltas: req_u64(&json, "deltas")?,
                new_nodes: req_arr(&json, "new_nodes")?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|n| n as u32)
                            .ok_or_else(|| "new node ids must be non-negative integers".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "stats" => Ok(Response::Stats(
                json.get("stats")
                    .cloned()
                    .ok_or_else(|| "missing field \"stats\"".to_string())?,
            )),
            "pong" => Ok(Response::Pong {
                epoch: req_u64(&json, "epoch")?,
            }),
            "goodbye_ack" => Ok(Response::GoodbyeAck),
            "error" => {
                let code_name = req_str(&json, "code")?;
                Ok(Response::Error {
                    code: ErrorCode::parse(code_name)
                        .ok_or_else(|| format!("unknown error code {code_name:?}"))?,
                    message: req_str(&json, "message")?.to_string(),
                    retry_after_ms: opt_u64(&json, "retry_after_ms")?,
                })
            }
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_engine::NodeId;

    fn round_trip_request(request: Request) {
        let decoded = Request::decode(&request.encode().unwrap()).unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: "loadgen-1".into(),
        });
        round_trip_request(Request::Query(QuerySpec {
            pattern: "node a: year\nnode b: movie\nedge a -> b\n".into(),
            semantics: Semantics::Simulation,
            strategy: Some(StrategyKind::Bounded),
            max_matches: Some(10),
            step_budget: Some(1_000),
            deadline_ms: Some(50),
            explain: true,
        }));
        round_trip_request(Request::Query(QuerySpec::new("node a: x")));
        round_trip_request(Request::Batch(vec![
            QuerySpec::new("node a: x"),
            QuerySpec {
                pattern: "node a: year\nnode b: movie\nedge a -> b\n".into(),
                semantics: Semantics::Simulation,
                strategy: Some(StrategyKind::Baseline),
                max_matches: Some(3),
                step_budget: None,
                deadline_ms: Some(25),
                explain: true,
            },
        ]));
        round_trip_request(Request::Update(vec![
            Update::AddNode {
                label: "movie".into(),
                value: Value::str("Argo \"quoted\""),
            },
            Update::AddNode {
                label: "rating".into(),
                value: Value::Float(4.5),
            },
            Update::AddNode {
                label: "flag".into(),
                value: Value::Bool(true),
            },
            Update::AddNode {
                label: "none".into(),
                value: Value::Null,
            },
            Update::AddEdge {
                src: NodeId(1),
                dst: NodeId(2),
            },
            Update::RemoveEdge {
                src: NodeId(2),
                dst: NodeId(1),
            },
            Update::RemoveNode { node: NodeId(7) },
        ]));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Ping);
        round_trip_request(Request::Goodbye);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::HelloAck {
            protocol: 1,
            server: "bgpq-serve/0.1".into(),
            epoch: 42,
        });
        round_trip_response(Response::BatchStart { count: 4 });
        round_trip_response(Response::Answer(AnswerHeader {
            kind: AnswerKind::Matches,
            strategy: "bounded (bVF2/bSim)".into(),
            snapshot_version: 3,
            total: 17,
        }));
        round_trip_response(Response::MatchRows(vec![vec![MatchBinding {
            node: "y".into(),
            id: 0,
            label: "year".into(),
            value: "2012".into(),
        }]]));
        round_trip_response(Response::SimRows(vec![SimChunk {
            node_index: 1,
            node: "p".into(),
            label: "post".into(),
            total: 4,
            ids: vec![3, 5, 8, 9],
        }]));
        round_trip_response(Response::Done(DoneFrame {
            aborted: true,
            stats: WireStats {
                plan_nanos: 1,
                fragment_build_nanos: 2,
                match_nanos: 3,
                total_nanos: 6,
                fragment_nodes: Some(9),
                worst_case_nodes: None,
            },
            explain: Some(vec!["plan (Isomorphism semantics):".into()]),
        }));
        round_trip_response(Response::Committed {
            version: 5,
            deltas: 9,
            new_nodes: vec![100, 101],
        });
        round_trip_response(Response::Stats(Json::obj([("requests", Json::Int(12))])));
        round_trip_response(Response::Pong { epoch: 0 });
        round_trip_response(Response::GoodbyeAck);
        round_trip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "12 requests in flight (limit 12)".into(),
            retry_after_ms: Some(5),
        });
        round_trip_response(Response::Error {
            code: ErrorCode::Parse,
            message: "bad".into(),
            retry_after_ms: None,
        });
    }

    /// `deadline_ms: 0` is a contract violation, not "one free millisecond":
    /// the decoder rejects it uniformly for `query` frames and every `batch`
    /// element, with the batch error naming the offending slot.
    #[test]
    fn zero_deadline_is_rejected_at_decode() {
        let err =
            Request::decode("{\"type\":\"query\",\"pattern\":\"node a: x\",\"deadline_ms\":0}")
                .unwrap_err();
        assert!(err.contains("deadline_ms"), "{err}");
        assert!(err.contains("at least 1"), "{err}");

        let err = Request::decode(
            "{\"type\":\"batch\",\"queries\":[{\"pattern\":\"node a: x\"},\
             {\"pattern\":\"node a: x\",\"deadline_ms\":0}]}",
        )
        .unwrap_err();
        assert!(err.contains("batch query 1"), "{err}");
        assert!(err.contains("deadline_ms"), "{err}");

        // 1 is the smallest valid deadline.
        let ok =
            Request::decode("{\"type\":\"query\",\"pattern\":\"node a: x\",\"deadline_ms\":1}")
                .unwrap();
        assert!(matches!(ok, Request::Query(spec) if spec.deadline_ms == Some(1)));
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::Parse,
            ErrorCode::TooLarge,
            ErrorCode::BadPattern,
            ErrorCode::Unbounded,
            ErrorCode::StrategyUnavailable,
            ErrorCode::BadUpdate,
            ErrorCode::BudgetExceeded,
            ErrorCode::Overloaded,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::Draining.is_retryable());
        assert!(!ErrorCode::Parse.is_retryable());
    }

    #[test]
    fn malformed_payloads_decode_to_typed_errors() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{}").is_err());
        assert!(Request::decode("{\"type\":\"warp\"}").is_err());
        assert!(Request::decode("{\"type\":\"query\"}").is_err()); // no pattern
        assert!(
            Request::decode("{\"type\":\"hello\",\"protocol\":\"x\",\"client\":\"c\"}").is_err()
        );
        assert!(
            Request::decode("{\"type\":\"update\",\"updates\":[{\"op\":\"transmogrify\"}]}")
                .is_err()
        );
        assert!(
            Response::decode("{\"type\":\"error\",\"code\":\"novel\",\"message\":\"m\"}").is_err()
        );
        // An empty batch is an error, not a silent no-op.
        assert!(Request::decode("{\"type\":\"batch\",\"queries\":[]}").is_err());
        assert!(Request::decode("{\"type\":\"batch\"}").is_err());
        // Non-finite floats are rejected at encode time, not smuggled as null.
        assert!(Request::Update(vec![Update::AddNode {
            label: "x".into(),
            value: Value::Float(f64::NAN),
        }])
        .encode()
        .is_err());
    }
}
