//! Re-export of the shared log-bucketed latency histogram.
//!
//! The histogram implementation moved to [`bgpq_workload::histogram`] so
//! the engine's open-loop bench can use it without depending on the
//! network stack (which would be a dependency cycle). This module keeps
//! the `bgpq_net::histogram` path — and the `crate::histogram` uses inside
//! the server — stable.

pub use bgpq_workload::histogram::LatencyHistogram;
