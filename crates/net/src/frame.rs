//! The frame layer: length-prefixed payloads over a byte stream.
//!
//! Every protocol message travels as one *frame*: a 4-byte big-endian
//! unsigned length `N`, followed by `N` bytes of UTF-8 JSON. The prefix is
//! what lets the server survive hostile or broken peers cheaply: an
//! oversized length is rejected after reading just 4 bytes (no allocation
//! proportional to the attacker's claim), a truncated body surfaces as a
//! typed [`FrameError::Truncated`] instead of a hang, and a read timeout on
//! the socket turns slow-loris dribbling into a clean close.
//!
//! The layer is symmetric — client and server use the same two functions —
//! and byte-counting: both return the on-wire size so sessions can account
//! traffic per client.

use std::io::{self, Read, Write};

/// Hard ceiling a reader accepts for one frame, before configuration.
pub const MAX_FRAME_BYTES_CEILING: u32 = 64 * 1024 * 1024;

/// Default per-frame size limit (8 MiB), enough for thousands of streamed
/// match rows per frame while keeping a hostile length prefix cheap.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// What went wrong while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames (not an error for
    /// a session loop; callers usually treat it as "goodbye without the
    /// courtesy frame").
    Closed,
    /// The length prefix exceeds the configured limit.
    TooLarge {
        /// The length the prefix claimed.
        claimed: u32,
        /// The configured limit.
        limit: u32,
    },
    /// The stream ended (or timed out) mid-prefix or mid-payload.
    Truncated {
        /// Bytes of the frame actually received.
        got: usize,
        /// Bytes the frame should have had (prefix + payload).
        wanted: usize,
    },
    /// The payload is not valid UTF-8.
    InvalidUtf8,
    /// An I/O error other than a mid-frame EOF or timeout.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { claimed, limit } => {
                write!(f, "frame of {claimed} bytes exceeds the {limit}-byte limit")
            }
            FrameError::Truncated { got, wanted } => {
                write!(f, "truncated frame: got {got} of {wanted} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "frame payload is not valid UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// True when the error is a read timeout (a stalled peer under a socket
/// read timeout — the slow-loris case).
pub fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before an
/// EOF or timeout cut the read short.
fn read_exact_counted(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), (usize, io::Error)> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err((
                    filled,
                    io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-frame"),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err((filled, e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning its UTF-8 payload and the total on-wire bytes
/// consumed (prefix included). A clean EOF *before* the first prefix byte is
/// [`FrameError::Closed`]; anything mid-frame (EOF or read timeout) is
/// [`FrameError::Truncated`].
pub fn read_frame(reader: &mut impl Read, max_bytes: u32) -> Result<(String, u64), FrameError> {
    let mut prefix = [0u8; 4];
    if let Err((got, err)) = read_exact_counted(reader, &mut prefix) {
        if got == 0 && err.kind() == io::ErrorKind::UnexpectedEof {
            return Err(FrameError::Closed);
        }
        if err.kind() == io::ErrorKind::UnexpectedEof || is_timeout(&err) {
            return Err(FrameError::Truncated { got, wanted: 4 });
        }
        return Err(FrameError::Io(err));
    }
    let len = u32::from_be_bytes(prefix);
    let limit = max_bytes.min(MAX_FRAME_BYTES_CEILING);
    if len > limit {
        return Err(FrameError::TooLarge {
            claimed: len,
            limit,
        });
    }
    let mut payload = vec![0u8; len as usize];
    if let Err((got, err)) = read_exact_counted(reader, &mut payload) {
        if err.kind() == io::ErrorKind::UnexpectedEof || is_timeout(&err) {
            return Err(FrameError::Truncated {
                got: 4 + got,
                wanted: 4 + len as usize,
            });
        }
        return Err(FrameError::Io(err));
    }
    let text = String::from_utf8(payload).map_err(|_| FrameError::InvalidUtf8)?;
    Ok((text, 4 + len as u64))
}

/// Writes one frame and flushes, returning the on-wire bytes written.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> io::Result<u64> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length",
        )
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;
    Ok(4 + payload.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn wire(payload: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn round_trips_and_counts_bytes() {
        let bytes = wire("{\"type\":\"ping\"}");
        assert_eq!(bytes.len(), 4 + 15);
        let (text, n) = read_frame(&mut Cursor::new(&bytes), 1024).unwrap();
        assert_eq!(text, "{\"type\":\"ping\"}");
        assert_eq!(n, bytes.len() as u64);
        // Several frames back to back.
        let mut stream = wire("a");
        stream.extend(wire("bb"));
        let mut cursor = Cursor::new(&stream);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().0, "a");
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().0, "bb");
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"whatever");
        match read_frame(&mut Cursor::new(&bytes), 1024) {
            Err(FrameError::TooLarge { claimed, limit }) => {
                assert_eq!(claimed, u32::MAX);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported_with_byte_counts() {
        // Prefix cut short.
        let err = read_frame(&mut Cursor::new(&[0u8, 0]), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { got: 2, wanted: 4 }));
        // Payload cut short.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(&bytes), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { got: 7, wanted: 14 }));
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), 1024),
            Err(FrameError::InvalidUtf8)
        ));
    }

    #[test]
    fn display_strings_are_informative() {
        assert!(FrameError::Closed.to_string().contains("closed"));
        assert!(FrameError::TooLarge {
            claimed: 9,
            limit: 4
        }
        .to_string()
        .contains("exceeds"));
        assert!(FrameError::Truncated { got: 1, wanted: 2 }
            .to_string()
            .contains("truncated"));
    }
}
