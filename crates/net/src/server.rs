//! The TCP front end: listener, per-connection sessions, admission
//! control, graceful drain and serving counters.
//!
//! One acceptor thread owns the [`TcpListener`]; each connection gets a
//! session thread running the protocol state machine (handshake, then a
//! request loop). Queries and updates pass the shared
//! [`AdmissionGate`] *before* touching the
//! engine: beyond `max_in_flight` concurrently admitted requests the
//! server answers `overloaded` with a retry-after hint instead of
//! queueing, and a draining server answers `draining` while admitted work
//! runs to completion on its pinned snapshot. Admitted queries execute on
//! the [`WorkerPool`] against a snapshot the
//! session pins up front, so the rendered labels and values always belong
//! to the exact version the answer was computed on.
//!
//! Shutdown is drain-first: [`NetServerHandle::shutdown`] stops admitting,
//! waits for in-flight permits to drop (bounded by
//! [`NetServerConfig::drain_timeout`]), then unblocks the acceptor and
//! closes every session socket.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::histogram::LatencyHistogram;
use crate::proto::{
    AnswerHeader, AnswerKind, DoneFrame, ErrorCode, MatchBinding, QuerySpec, Request, Response,
    SimChunk, WireStats, PROTOCOL_VERSION,
};
use bgpq_engine::{parse_pattern, BgpqError, BudgetPolicy, QueryAnswer, QueryRequest};
use bgpq_graph::io::json::Json;
use bgpq_serve::{Admission, AdmissionGate, GateStats, Server, Update, WorkerPool};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`NetServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing admitted queries.
    pub workers: usize,
    /// Admission cap: maximum concurrently admitted queries/updates. Zero
    /// is legal and rejects every request (out-of-rotation mode).
    pub max_in_flight: usize,
    /// Per-frame size limit for incoming frames.
    pub max_frame_bytes: u32,
    /// Socket read timeout per session. `None` lets idle clients (REPLs)
    /// sit forever; setting it turns stalled or slow-loris peers into a
    /// clean close once the timeout elapses.
    pub read_timeout: Option<Duration>,
    /// Server identification sent in the handshake acknowledgement.
    pub server_name: String,
    /// How wall-clock deadlines map onto deterministic step budgets.
    pub budget_policy: BudgetPolicy,
    /// Match rows per streamed frame.
    pub rows_per_frame: usize,
    /// How long [`NetServerHandle::shutdown`] waits for in-flight requests.
    pub drain_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_in_flight: 8,
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: None,
            server_name: "bgpq-net".into(),
            budget_policy: BudgetPolicy::default(),
            rows_per_frame: 64,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Default)]
struct ClientCounters {
    requests: u64,
    rejected: u64,
    bytes_in: u64,
    bytes_out: u64,
}

struct Shared {
    server: Arc<Server>,
    pool: WorkerPool,
    gate: Arc<AdmissionGate>,
    config: NetServerConfig,
    stop: AtomicBool,
    requests: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    clients: Mutex<BTreeMap<String, ClientCounters>>,
    next_conn: AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// The TCP front end; [`NetServer::start`] returns a handle controlling it.
pub struct NetServer;

impl NetServer {
    /// Binds `config.addr` and starts serving `server`. The acceptor and
    /// all sessions run on background threads; the returned handle is the
    /// only way to drain and stop them.
    pub fn start(server: Arc<Server>, config: NetServerConfig) -> std::io::Result<NetServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(Arc::clone(&server), config.workers.max(1)),
            gate: AdmissionGate::new(config.max_in_flight),
            server,
            config,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
            clients: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            sessions: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(NetServerHandle {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }
}

/// Controls a running [`NetServer`]; dropping it shuts the server down.
pub struct NetServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served [`Server`], for out-of-band commits or direct queries.
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Stops admitting queries and updates: subsequent ones get a
    /// `draining` rejection while admitted work completes. `ping`, `stats`
    /// and `goodbye` stay available. Idempotent.
    pub fn drain(&self) {
        self.shared.gate.begin_drain();
    }

    /// True once [`drain`](NetServerHandle::drain) (or shutdown) began.
    pub fn is_draining(&self) -> bool {
        self.shared.gate.is_draining()
    }

    /// Requests currently admitted.
    pub fn in_flight(&self) -> usize {
        self.shared.gate.in_flight()
    }

    /// Admission counters.
    pub fn gate_stats(&self) -> GateStats {
        self.shared.gate.stats()
    }

    /// Drains, waits for in-flight work (bounded by the configured
    /// `drain_timeout`), then stops the acceptor, closes every session and
    /// joins all threads. Returns whether the drain completed before the
    /// timeout.
    pub fn shutdown(mut self) -> bool {
        self.stop_internal()
    }

    fn stop_internal(&mut self) -> bool {
        let Some(acceptor) = self.acceptor.take() else {
            return true;
        };
        self.shared.gate.begin_drain();
        let drained = self
            .shared
            .gate
            .await_idle(self.shared.config.drain_timeout);
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        for (_, conn) in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let sessions: Vec<_> = self
            .shared
            .sessions
            .lock()
            .expect("sessions poisoned")
            .drain(..)
            .collect();
        for session in sessions {
            let _ = session.join();
        }
        drained
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let _ = stream.set_read_timeout(shared.config.read_timeout);
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns poisoned")
                .push((conn_id, clone));
        }
        let session = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                session_loop(Arc::clone(&shared), stream);
                // The session's own stream is gone, but the tracked clone
                // keeps the descriptor open — shut the socket down so the
                // peer sees EOF, and drop the clone to free the slot.
                let mut conns = shared.conns.lock().expect("conns poisoned");
                if let Some(pos) = conns.iter().position(|(id, _)| *id == conn_id) {
                    let (_, conn) = conns.swap_remove(pos);
                    let _ = conn.shutdown(Shutdown::Both);
                }
            })
        };
        shared
            .sessions
            .lock()
            .expect("sessions poisoned")
            .push(session);
    }
}

/// One session's mutable half: the framed writer plus byte/error
/// accounting against the shared counters.
struct SessionOut<'a> {
    shared: &'a Shared,
    writer: BufWriter<TcpStream>,
    client: Option<String>,
}

impl SessionOut<'_> {
    fn send(&mut self, response: &Response) -> std::io::Result<()> {
        if matches!(response, Response::Error { .. }) {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bytes = write_frame(&mut self.writer, &response.encode())?;
        self.shared.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        if let Some(name) = &self.client {
            let mut clients = self.shared.clients.lock().expect("clients poisoned");
            clients.entry(name.clone()).or_default().bytes_out += bytes;
        }
        Ok(())
    }

    fn send_error(
        &mut self,
        code: ErrorCode,
        message: impl Into<String>,
        retry_after_ms: Option<u64>,
    ) -> std::io::Result<()> {
        self.send(&Response::Error {
            code,
            message: message.into(),
            retry_after_ms,
        })
    }
}

fn session_loop(shared: Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = SessionOut {
        shared: &shared,
        writer: BufWriter::new(stream),
        client: None,
    };

    // Handshake: the first frame must be a matching `hello`. Any protocol
    // violation here gets a typed error and a close.
    let payload = match next_payload(&shared, &mut reader, &mut out) {
        Some(p) => p,
        None => return,
    };
    match Request::decode(&payload) {
        Ok(Request::Hello { protocol, client }) => {
            if protocol != PROTOCOL_VERSION {
                let _ = out.send_error(
                    ErrorCode::Protocol,
                    format!(
                        "unsupported protocol version {protocol} (server speaks {PROTOCOL_VERSION})"
                    ),
                    None,
                );
                return;
            }
            shared
                .clients
                .lock()
                .expect("clients poisoned")
                .entry(client.clone())
                .or_default();
            out.client = Some(client);
            let ack = Response::HelloAck {
                protocol: PROTOCOL_VERSION,
                server: shared.config.server_name.clone(),
                epoch: shared.server.version(),
            };
            if out.send(&ack).is_err() {
                return;
            }
        }
        Ok(_) => {
            let _ = out.send_error(
                ErrorCode::Protocol,
                "expected a hello frame before any request",
                None,
            );
            return;
        }
        Err(e) => {
            let _ = out.send_error(ErrorCode::Parse, e, None);
            return;
        }
    }

    // Request loop. Client-side mistakes (parse errors, bad patterns) are
    // answered and the session continues; framing violations close it.
    loop {
        let payload = match next_payload(&shared, &mut reader, &mut out) {
            Some(p) => p,
            None => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(name) = &out.client {
            let mut clients = shared.clients.lock().expect("clients poisoned");
            clients.entry(name.clone()).or_default().requests += 1;
        }
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                if out.send_error(ErrorCode::Parse, e, None).is_err() {
                    return;
                }
                continue;
            }
        };
        let flow = match request {
            Request::Hello { .. } => {
                let _ = out.send_error(ErrorCode::Protocol, "duplicate hello", None);
                return;
            }
            Request::Query(spec) => handle_query(&shared, &mut out, spec),
            Request::Batch(specs) => handle_batch(&shared, &mut out, specs),
            Request::Update(updates) => handle_update(&shared, &mut out, &updates),
            Request::Stats => out.send(&Response::Stats(stats_json(&shared))),
            Request::Ping => out.send(&Response::Pong {
                epoch: shared.server.version(),
            }),
            Request::Goodbye => {
                let _ = out.send(&Response::GoodbyeAck);
                return;
            }
        };
        if flow.is_err() {
            return; // peer gone mid-response
        }
    }
}

/// Reads the next frame, translating framing failures into the protocol's
/// close semantics. `None` means the session is over (the error, if any,
/// was already reported best-effort).
fn next_payload(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    out: &mut SessionOut<'_>,
) -> Option<String> {
    match read_frame(reader, shared.config.max_frame_bytes) {
        Ok((payload, bytes)) => {
            shared.bytes_in.fetch_add(bytes, Ordering::Relaxed);
            if let Some(name) = &out.client {
                let mut clients = shared.clients.lock().expect("clients poisoned");
                clients.entry(name.clone()).or_default().bytes_in += bytes;
            }
            Some(payload)
        }
        Err(FrameError::Closed) => None,
        Err(FrameError::Truncated { got: 0, .. }) => {
            // Idle past the read timeout with no frame started: close
            // quietly (an idle REPL, or a slow-loris peer that sent nothing).
            None
        }
        Err(FrameError::TooLarge { claimed, limit }) => {
            let _ = out.send_error(
                ErrorCode::TooLarge,
                format!("frame of {claimed} bytes exceeds the {limit}-byte limit"),
                None,
            );
            None
        }
        Err(err @ (FrameError::Truncated { .. } | FrameError::InvalidUtf8)) => {
            let _ = out.send_error(ErrorCode::Protocol, err.to_string(), None);
            None
        }
        Err(FrameError::Io(_)) => None,
    }
}

/// Back-off hint for `overloaded` rejections: about half the typical
/// (p50) query latency, clamped to [1, 1000] ms; 5 ms before any sample.
fn retry_hint_ms(shared: &Shared) -> u64 {
    let hist = shared.latency.lock().expect("latency poisoned");
    if hist.count() == 0 {
        return 5;
    }
    (hist.quantile(0.5) / 2_000).clamp(1, 1_000)
}

fn reject(shared: &Shared, out: &mut SessionOut<'_>, admission: Admission) -> std::io::Result<()> {
    if let Some(name) = &out.client {
        let mut clients = shared.clients.lock().expect("clients poisoned");
        clients.entry(name.clone()).or_default().rejected += 1;
    }
    match admission {
        Admission::Overloaded { in_flight, limit } => out.send_error(
            ErrorCode::Overloaded,
            format!("{in_flight} requests in flight (limit {limit})"),
            Some(retry_hint_ms(shared)),
        ),
        Admission::Draining => out.send_error(
            ErrorCode::Draining,
            "server is draining; new requests are not admitted",
            None,
        ),
        Admission::Admitted(_) => unreachable!("reject called with an admitted permit"),
    }
}

fn map_engine_error(err: &BgpqError) -> (ErrorCode, String) {
    match err {
        BgpqError::Unbounded(e) => (ErrorCode::Unbounded, e.to_string()),
        BgpqError::StrategyUnavailable { .. } => (ErrorCode::StrategyUnavailable, err.to_string()),
        BgpqError::PatternMismatch { .. } => (ErrorCode::BadPattern, err.to_string()),
        BgpqError::Graph(e) => (ErrorCode::Internal, e.to_string()),
    }
}

/// Builds the engine request for one wire spec against a pinned snapshot.
fn build_request(
    shared: &Shared,
    snapshot: &bgpq_serve::Snapshot,
    spec: &QuerySpec,
) -> Result<(QueryRequest, bgpq_pattern::Pattern), (ErrorCode, String)> {
    let pattern = parse_pattern(&spec.pattern, snapshot.graph().interner().clone())
        .map_err(|e| (ErrorCode::BadPattern, e.to_string()))?;
    let mut builder = QueryRequest::build(pattern.clone())
        .semantics(spec.semantics)
        .explain(spec.explain);
    if let Some(kind) = spec.strategy {
        builder = builder.strategy(kind);
    }
    if let Some(n) = spec.max_matches {
        builder = builder.max_matches(n);
    }
    if let Some(n) = spec.step_budget {
        builder = builder.step_budget(n);
    }
    if let Some(ms) = spec.deadline_ms {
        builder = builder.deadline(Duration::from_millis(ms), &shared.config.budget_policy);
    }
    Ok((builder.finish(), pattern))
}

/// Whether an aborted run is a deadline overrun: true when the
/// deadline-derived budget was the binding constraint. An abort under a
/// tighter *explicit* budget is an ordinary truncated answer instead.
fn deadline_blamed(shared: &Shared, spec: &QuerySpec, aborted: bool) -> bool {
    aborted
        && spec.deadline_ms.is_some_and(|ms| {
            let derived = shared
                .config
                .budget_policy
                .step_budget_for(Duration::from_millis(ms));
            derived <= spec.step_budget.unwrap_or(u64::MAX)
        })
}

/// Streams one query's reply sequence: the deadline-blame decision, then
/// either a typed error or the `answer`/`rows*`/`done` frames.
fn send_query_result(
    shared: &Shared,
    out: &mut SessionOut<'_>,
    spec: &QuerySpec,
    result: Result<bgpq_engine::QueryResponse, BgpqError>,
    pattern: &bgpq_pattern::Pattern,
    snapshot: &bgpq_serve::Snapshot,
) -> std::io::Result<()> {
    match result {
        Err(err) => {
            let (code, message) = map_engine_error(&err);
            out.send_error(code, message, None)
        }
        Ok(response) => {
            // An abort is a deadline overrun — a typed error — when the
            // deadline-derived budget was the binding constraint; an abort
            // under a tighter *explicit* budget is an ordinary truncated
            // answer with `done.aborted` set.
            if deadline_blamed(shared, spec, response.stats.aborted) {
                out.send_error(
                    ErrorCode::BudgetExceeded,
                    format!(
                        "deadline of {} ms exhausted the step budget before completion",
                        spec.deadline_ms.unwrap_or(0)
                    ),
                    None,
                )
            } else {
                stream_answer(shared, out, &response, pattern, snapshot)
            }
        }
    }
}

fn handle_query(shared: &Shared, out: &mut SessionOut<'_>, spec: QuerySpec) -> std::io::Result<()> {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    let permit = match shared.gate.try_admit() {
        Admission::Admitted(permit) => permit,
        rejected => return reject(shared, out, rejected),
    };
    let started = Instant::now();

    // Pin one snapshot for the whole request: the pool executes on it and
    // the bindings below render labels/values from the same version.
    let snapshot = shared.server.snapshot();
    let (request, pattern) = match build_request(shared, &snapshot, &spec) {
        Ok(built) => built,
        Err((code, message)) => {
            drop(permit);
            return out.send_error(code, message, None);
        }
    };
    let result = match shared
        .pool
        .submit_pinned(Arc::clone(&snapshot), request)
        .recv()
    {
        Ok(result) => result,
        Err(_) => {
            drop(permit);
            return out.send_error(ErrorCode::Internal, "worker pool unavailable", None);
        }
    };

    let flow = send_query_result(shared, out, &spec, result, &pattern, &snapshot);
    shared
        .latency
        .lock()
        .expect("latency poisoned")
        .record(started.elapsed().as_micros() as u64);
    drop(permit); // response fully written: free the admission slot
    flow
}

/// Serves a [`Request::Batch`]: one admission permit and one pinned
/// snapshot for the whole batch, executed through
/// [`WorkerPool::submit_batch_pinned`] so the queries share index lookups.
/// The reply is a `batch_start` frame followed by one reply sequence per
/// query in request order — a full answer stream, or a single error frame
/// for slots that fail to parse, exceed their deadline, or error in the
/// engine. Slot failures never abort the rest of the batch.
fn handle_batch(
    shared: &Shared,
    out: &mut SessionOut<'_>,
    specs: Vec<QuerySpec>,
) -> std::io::Result<()> {
    shared
        .queries
        .fetch_add(specs.len() as u64, Ordering::Relaxed);
    let permit = match shared.gate.try_admit() {
        Admission::Admitted(permit) => permit,
        rejected => return reject(shared, out, rejected),
    };
    let started = Instant::now();

    let snapshot = shared.server.snapshot();
    // Build every slot up front; parse failures keep their position and are
    // reported in-sequence without occupying the pool.
    let built: Vec<Result<(QueryRequest, bgpq_pattern::Pattern), (ErrorCode, String)>> = specs
        .iter()
        .map(|spec| build_request(shared, &snapshot, spec))
        .collect();
    let requests: Vec<QueryRequest> = built
        .iter()
        .filter_map(|b| b.as_ref().ok().map(|(request, _)| request.clone()))
        .collect();
    let mut results = if requests.is_empty() {
        Vec::new()
    } else {
        match shared
            .pool
            .submit_batch_pinned(Arc::clone(&snapshot), requests)
            .recv()
        {
            Ok(results) => results,
            Err(_) => {
                drop(permit);
                return out.send_error(ErrorCode::Internal, "worker pool unavailable", None);
            }
        }
    };

    let mut flow = out.send(&Response::BatchStart {
        count: specs.len() as u64,
    });
    let mut next_result = results.drain(..);
    for (spec, slot) in specs.iter().zip(&built) {
        if flow.is_err() {
            break;
        }
        flow = match slot {
            Err((code, message)) => out.send_error(*code, message.clone(), None),
            Ok((_, pattern)) => {
                let result = next_result
                    .next()
                    .unwrap_or(Err(BgpqError::StrategyUnavailable {
                        requested: bgpq_engine::StrategyKind::Bounded,
                        reason: "worker pool returned too few results".into(),
                    }));
                send_query_result(shared, out, spec, result, pattern, &snapshot)
            }
        };
    }
    shared
        .latency
        .lock()
        .expect("latency poisoned")
        .record(started.elapsed().as_micros() as u64);
    drop(permit);
    flow
}

fn node_display(pattern: &bgpq_pattern::Pattern, u: bgpq_pattern::PatternNodeId) -> String {
    match pattern.node_name(u) {
        Some(name) => name.to_string(),
        None => u.to_string(),
    }
}

fn stream_answer(
    shared: &Shared,
    out: &mut SessionOut<'_>,
    response: &bgpq_engine::QueryResponse,
    pattern: &bgpq_pattern::Pattern,
    snapshot: &bgpq_serve::Snapshot,
) -> std::io::Result<()> {
    let graph = snapshot.graph();
    let rows_per_frame = shared.config.rows_per_frame.max(1);
    let kind = match &response.answer {
        QueryAnswer::Matches(_) => AnswerKind::Matches,
        QueryAnswer::Simulation(_) => AnswerKind::Simulation,
    };
    out.send(&Response::Answer(AnswerHeader {
        kind,
        strategy: response.strategy.to_string(),
        snapshot_version: response.stats.snapshot_version,
        total: response.answer.len() as u64,
    }))?;

    match &response.answer {
        QueryAnswer::Matches(matches) => {
            let mut chunk: Vec<Vec<MatchBinding>> = Vec::with_capacity(rows_per_frame);
            for m in matches.iter() {
                let row = pattern
                    .nodes()
                    .map(|u| {
                        let v = m.node_for(u);
                        MatchBinding {
                            node: node_display(pattern, u),
                            id: v.0,
                            label: graph.label_name(v).to_string(),
                            value: graph.value(v).to_string(),
                        }
                    })
                    .collect();
                chunk.push(row);
                if chunk.len() == rows_per_frame {
                    out.send(&Response::MatchRows(std::mem::take(&mut chunk)))?;
                }
            }
            if !chunk.is_empty() {
                out.send(&Response::MatchRows(chunk))?;
            }
        }
        QueryAnswer::Simulation(relation) => {
            let ids_per_chunk = rows_per_frame * 8;
            for (index, u) in pattern.nodes().enumerate() {
                let vs = relation.matches_of(u);
                let ids: Vec<u32> = vs.iter().map(|v| v.0).collect();
                // Every pattern node gets at least one chunk (possibly with
                // no ids) so the client renders empty rows too.
                let mut sent_any = false;
                for piece in ids.chunks(ids_per_chunk.max(1)) {
                    out.send(&Response::SimRows(vec![SimChunk {
                        node_index: index as u32,
                        node: node_display(pattern, u),
                        label: pattern.label_name(u),
                        total: ids.len() as u64,
                        ids: piece.to_vec(),
                    }]))?;
                    sent_any = true;
                }
                if !sent_any {
                    out.send(&Response::SimRows(vec![SimChunk {
                        node_index: index as u32,
                        node: node_display(pattern, u),
                        label: pattern.label_name(u),
                        total: 0,
                        ids: Vec::new(),
                    }]))?;
                }
            }
        }
    }

    let stats = &response.stats;
    let explain = response.explain.as_ref().map(|ex| {
        ex.render_lines(
            pattern,
            snapshot.engine().indices().schema(),
            graph.interner(),
        )
    });
    out.send(&Response::Done(DoneFrame {
        aborted: stats.aborted,
        stats: WireStats {
            plan_nanos: stats.plan_nanos,
            fragment_build_nanos: stats.fragment_build_nanos,
            match_nanos: stats.match_nanos,
            total_nanos: stats.total_nanos,
            fragment_nodes: stats.fetch.as_ref().map(|f| f.fragment_nodes as u64),
            worst_case_nodes: stats.worst_case_nodes,
        },
        explain,
    }))
}

fn handle_update(
    shared: &Shared,
    out: &mut SessionOut<'_>,
    updates: &[Update],
) -> std::io::Result<()> {
    shared.updates.fetch_add(1, Ordering::Relaxed);
    let permit = match shared.gate.try_admit() {
        Admission::Admitted(permit) => permit,
        rejected => return reject(shared, out, rejected),
    };
    let flow = match shared.server.commit(updates) {
        Ok(receipt) => out.send(&Response::Committed {
            version: receipt.version,
            deltas: receipt.deltas as u64,
            new_nodes: receipt.new_nodes.iter().map(|n| n.0).collect(),
        }),
        Err(err) => out.send_error(ErrorCode::BadUpdate, err.to_string(), None),
    };
    drop(permit);
    flow
}

fn stats_json(shared: &Shared) -> Json {
    let gate = shared.gate.stats();
    let server = shared.server.stats();
    let latency = {
        let hist = shared.latency.lock().expect("latency poisoned");
        Json::obj([
            ("count", Json::Int(hist.count() as i64)),
            ("mean", Json::Int(hist.mean() as i64)),
            ("p50", Json::Int(hist.quantile(0.5) as i64)),
            ("p95", Json::Int(hist.quantile(0.95) as i64)),
            ("p99", Json::Int(hist.quantile(0.99) as i64)),
            ("max", Json::Int(hist.max() as i64)),
        ])
    };
    let clients = {
        let clients = shared.clients.lock().expect("clients poisoned");
        Json::Arr(
            clients
                .iter()
                .map(|(name, c)| {
                    Json::obj([
                        ("name", Json::str(name.clone())),
                        ("requests", Json::Int(c.requests as i64)),
                        ("rejected", Json::Int(c.rejected as i64)),
                        ("bytes_in", Json::Int(c.bytes_in as i64)),
                        ("bytes_out", Json::Int(c.bytes_out as i64)),
                    ])
                })
                .collect(),
        )
    };
    Json::obj([
        (
            "server",
            Json::obj([
                ("name", Json::str(shared.config.server_name.clone())),
                ("protocol", Json::Int(PROTOCOL_VERSION as i64)),
                ("epoch", Json::Int(server.epoch as i64)),
                ("commits", Json::Int(server.commits as i64)),
                ("draining", Json::Bool(shared.gate.is_draining())),
                ("in_flight", Json::Int(shared.gate.in_flight() as i64)),
                ("limit", Json::Int(shared.gate.limit() as i64)),
                (
                    "requests",
                    Json::Int(shared.requests.load(Ordering::Relaxed) as i64),
                ),
                (
                    "queries",
                    Json::Int(shared.queries.load(Ordering::Relaxed) as i64),
                ),
                (
                    "updates",
                    Json::Int(shared.updates.load(Ordering::Relaxed) as i64),
                ),
                (
                    "errors",
                    Json::Int(shared.errors.load(Ordering::Relaxed) as i64),
                ),
                ("admitted", Json::Int(gate.admitted as i64)),
                (
                    "rejected_overloaded",
                    Json::Int(gate.rejected_overloaded as i64),
                ),
                (
                    "rejected_draining",
                    Json::Int(gate.rejected_draining as i64),
                ),
                ("peak_in_flight", Json::Int(gate.peak_in_flight as i64)),
                (
                    "bytes_in",
                    Json::Int(shared.bytes_in.load(Ordering::Relaxed) as i64),
                ),
                (
                    "bytes_out",
                    Json::Int(shared.bytes_out.load(Ordering::Relaxed) as i64),
                ),
                ("latency_us", latency),
            ]),
        ),
        ("clients", clients),
    ])
}
