//! # bgpq-net
//!
//! The network front end of the `bgpq` serving stack: a dependency-free
//! TCP wire protocol with production admission control, built from `std`
//! alone (`std::net` sockets, the workspace's own JSON in
//! [`bgpq_graph::io::json`]).
//!
//! Everything below this crate answers queries in-process. The paper's
//! point, though, is *serving*: bounded evaluation matters because it
//! makes query cost predictable enough to put behind a network interface
//! with latency objectives. This crate is that interface:
//!
//! ```text
//!   bgpq client ──┐  length-prefixed JSON frames   ┌────────────────────┐
//!   bgpq client ──┼──────────── TCP ───────────────│ NetServer          │
//!   loadgen     ──┘                                │  AdmissionGate     │
//!                   hello → queries/updates/stats  │   ├─ admitted ─────│──► WorkerPool
//!                   ◄─ streamed answers / errors   │   └─ overloaded /  │    (pinned
//!                                                  │      draining ──► typed  snapshots)
//!                                                  └────────── reject ──┘
//! ```
//!
//! * [`frame`] — the byte layer: 4-byte big-endian length + UTF-8 JSON
//!   payload, hostile-peer-safe (oversized prefixes rejected unallocated,
//!   truncation and slow-loris surfaced as typed errors).
//! * [`proto`] — the message layer: typed requests ([`Request`]) and
//!   responses ([`Response`]) with symmetric encode/decode, streamed
//!   answer frames, and machine-readable [`ErrorCode`]s separating client
//!   mistakes from server state.
//! * [`server`] — [`NetServer`]: per-connection sessions in front of
//!   [`bgpq_serve::Server`]/[`bgpq_serve::WorkerPool`], bounded in-flight
//!   admission with `overloaded` backpressure, wall-clock deadlines mapped
//!   onto deterministic step budgets, graceful drain, and per-client /
//!   per-server counters with log-bucketed latency percentiles.
//! * [`client`] — [`Client`]: the blocking counterpart used by the
//!   `bgpq serve` / `bgpq client` CLI subcommands and the benchmarks.
//!
//! The normative protocol description lives in `docs/PROTOCOL.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod histogram;
pub mod proto;
pub mod server;

pub use client::{Client, CommitSummary, QueryOutcome};
pub use error::ClientError;
pub use frame::{FrameError, DEFAULT_MAX_FRAME_BYTES, MAX_FRAME_BYTES_CEILING};
pub use histogram::LatencyHistogram;
pub use proto::{
    AnswerHeader, AnswerKind, DoneFrame, ErrorCode, MatchBinding, QuerySpec, Request, Response,
    SimChunk, WireStats, PROTOCOL_VERSION,
};
pub use server::{NetServer, NetServerConfig, NetServerHandle};
