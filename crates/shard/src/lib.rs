//! # bgpq-shard
//!
//! Partitioned graph shards and parallel bounded execution for the `bgpq`
//! workspace, a reproduction of *"Making Pattern Queries Bounded in Big
//! Graphs"* (Cao, Fan, Huai, Huang, ICDE 2015).
//!
//! Bounded evaluability makes the fragment `G_Q` small and independent of
//! `|G|`, which means the expensive phases — index construction, candidate
//! fetch, per-seed matching — partition cleanly over the data graph. This
//! crate supplies that partitioning:
//!
//! * [`partition`] — [`PartitionSpec`]: the pure `node → shard` function
//!   (hash over node ids by default, label-range optionally), shared by
//!   build, maintenance and snapshot load so ownership never drifts;
//! * [`shard`] — [`Shard`] (a partition's node set, label index and CSR
//!   adjacency slice) and [`ShardedGraph`] (all shards plus the
//!   cross-partition edge map), built in parallel;
//! * [`index`] — [`ShardedIndexSet`]: one filtered
//!   [`AccessIndexSet`](bgpq_access::AccessIndexSet) per shard, built in
//!   parallel, mergeable into the exact single-shard set and maintainable
//!   per shard under delta streams;
//! * [`exec`] — the parallel bounded executors: candidate fetch fanning out
//!   across shards, `bVF2` splitting a deterministic pivot's candidates
//!   across workers, `bSim` on the merged fragment — all returning answers
//!   byte-identical to the single-shard engine regardless of thread count;
//! * [`pool`] — the dependency-free `std::thread::scope` work pool the
//!   parallel phases run on;
//! * [`runtime`] — [`ShardRuntime`]: the bundle (sharded graph, sharded
//!   indices, arena pool, thread budget) a session engine attaches to turn
//!   on partitioned execution;
//! * [`snapshot`] — the `Shards` section of the `.bgpq` container:
//!   partition spec plus independently-decodable per-shard index blobs, so
//!   a snapshot is compiled once and loaded in parallel.
//!
//! **Determinism rule.** Every parallel phase merges through canonicalizing
//! constructors (`MatchSet::new` sorts and dedups, candidate sets are
//! sorted unions of disjoint per-shard answers, simulation relations are
//! unique fixpoints), so the merged result is byte-identical to the serial
//! one for every `(partitions, threads)` combination. Order-dependent
//! requests (match/step budgets) run the serial path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod index;
pub mod partition;
pub mod pool;
pub mod runtime;
pub mod shard;
pub mod snapshot;

pub use exec::{
    parallel_bounded_simulation_match_prefetched, parallel_bounded_subgraph_match_prefetched,
    sharded_fetch_candidate_sets,
};
pub use index::ShardedIndexSet;
pub use partition::PartitionSpec;
pub use pool::parallel_map;
pub use runtime::{PartitionScheme, ShardConfig, ShardRuntime};
pub use shard::{CrossEdge, Shard, ShardedGraph};
pub use snapshot::{
    decode_shards_section, encode_shards_section, load_sharded_snapshot, save_sharded_snapshot,
};
