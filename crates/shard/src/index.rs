//! Per-partition access indices: [`ShardedIndexSet`].
//!
//! Each shard carries its own [`AccessIndexSet`] restricted to the targets
//! it owns: every `(key → target)` index entry lives whole in the target's
//! shard, so the union of the per-shard indices is *exactly* the single
//! build — same entries, same answers, same truncation verdicts. That
//! equality is what lets partitioned fetch answer queries by concatenating
//! disjoint per-shard answers, and it is enforced both here and by the
//! `merge_shards` tests in `bgpq-access`.
//!
//! Builds and incremental maintenance both fan out one worker per shard;
//! ownership comes from the same [`PartitionSpec`] the shards were built
//! with, so a maintained sharded set never drifts from a rebuilt one.

use crate::partition::PartitionSpec;
use crate::pool::parallel_map;
use bgpq_access::{
    apply_deltas_filtered, AccessIndexSet, AccessSchema, ConstraintId, GraphDelta,
    MaintenanceStats, DEFAULT_MAX_COMBINATIONS_PER_NODE,
};
use bgpq_graph::{Graph, NodeId};

/// One filtered [`AccessIndexSet`] per shard, all over the same schema.
#[derive(Debug, Clone)]
pub struct ShardedIndexSet {
    spec: PartitionSpec,
    shards: Vec<AccessIndexSet>,
}

/// The ownership predicate shard `p` closes over: live nodes belong to the
/// shard the spec names; tombstoned slots are claimed by *every* shard so a
/// deletion refreshes all of them (a no-op wherever the node contributed
/// nothing).
fn owns<'a>(graph: &'a Graph, spec: &'a PartitionSpec, p: u32) -> impl Fn(NodeId) -> bool + 'a {
    move |v| !graph.is_live(v) || spec.shard_of(v, graph.label(v)) == p
}

impl ShardedIndexSet {
    /// Builds the per-shard indices for `schema` in parallel on up to
    /// `threads` workers, each restricted to the targets its shard owns.
    pub fn build(
        graph: &Graph,
        schema: &AccessSchema,
        spec: &PartitionSpec,
        threads: usize,
    ) -> Self {
        Self::build_with_cap(
            graph,
            schema,
            spec,
            DEFAULT_MAX_COMBINATIONS_PER_NODE,
            threads,
        )
    }

    /// [`ShardedIndexSet::build`] with an explicit per-target combination cap.
    pub fn build_with_cap(
        graph: &Graph,
        schema: &AccessSchema,
        spec: &PartitionSpec,
        cap: usize,
        threads: usize,
    ) -> Self {
        let ids: Vec<u32> = (0..spec.partitions() as u32).collect();
        let shards = parallel_map(threads, &ids, |_, &p| {
            AccessIndexSet::build_filtered_with_cap(graph, schema, cap, owns(graph, spec, p))
        });
        ShardedIndexSet {
            spec: spec.clone(),
            shards,
        }
    }

    /// Wraps already-built per-shard sets (used by snapshot load). The
    /// caller asserts they were built under `spec`.
    pub fn from_parts(spec: PartitionSpec, shards: Vec<AccessIndexSet>) -> Self {
        assert_eq!(
            spec.partitions(),
            shards.len(),
            "shard count must match the spec"
        );
        ShardedIndexSet { spec, shards }
    }

    /// The spec ownership is keyed on.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The per-shard index sets, in shard-id order.
    pub fn shards(&self) -> &[AccessIndexSet] {
        &self.shards
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.shards.len()
    }

    /// Merges the per-shard sets into the exact single-build set.
    pub fn merged(&self) -> AccessIndexSet {
        AccessIndexSet::merge_shards(&self.shards)
    }

    /// The full answer for `key` under constraint `id`: the sorted
    /// concatenation of the disjoint per-shard answers.
    pub fn common_neighbors(&self, id: ConstraintId, key: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .shards
            .iter()
            .filter_map(|s| s.get(id))
            .flat_map(|ix| ix.common_neighbors(key).iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether any shard's index for `id` hit its combination cap.
    /// Per-target enumeration is identical to the single build, so this OR
    /// equals the single-shard verdict.
    pub fn is_truncated(&self, id: ConstraintId) -> bool {
        self.shards
            .iter()
            .filter_map(|s| s.get(id))
            .any(|ix| ix.is_truncated())
    }

    /// Applies a delta batch to every shard, one worker per shard (serial
    /// when `threads <= 1`), each filtered to the nodes it owns.
    /// `new_graph` must already reflect the deltas. Returns per-shard
    /// maintenance stats, in shard order.
    pub fn apply_deltas(
        &mut self,
        new_graph: &Graph,
        deltas: &[GraphDelta],
        threads: usize,
    ) -> Vec<MaintenanceStats> {
        let spec = self.spec.clone();
        if threads <= 1 {
            return self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(p, set)| {
                    apply_deltas_filtered(set, new_graph, deltas, owns(new_graph, &spec, p as u32))
                })
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(p, set)| {
                    let spec = &spec;
                    scope.spawn(move || {
                        apply_deltas_filtered(
                            set,
                            new_graph,
                            deltas,
                            owns(new_graph, spec, p as u32),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard maintenance worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::{apply_deltas, AccessConstraint};
    use bgpq_graph::{GraphBuilder, Value};

    /// Bipartite users → items graph with enough overlap that binary keys
    /// get multi-node answers spread across shards.
    fn toy() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let users: Vec<_> = (0..12).map(|i| b.add_node("user", Value::Int(i))).collect();
        let items: Vec<_> = (0..8).map(|i| b.add_node("item", Value::Int(i))).collect();
        for (i, &u) in users.iter().enumerate() {
            for (j, &t) in items.iter().enumerate() {
                if (i + j) % 3 == 0 {
                    b.add_edge(u, t).unwrap();
                }
            }
        }
        let g = b.build();
        let user = g.interner().get("user").unwrap();
        let item = g.interner().get("item").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(user, 64),
            AccessConstraint::unary(user, item, 64),
            AccessConstraint::new([user, user], item, 64),
        ]);
        (g, schema)
    }

    #[test]
    fn sharded_build_merges_to_the_single_build() {
        let (g, schema) = toy();
        let full = AccessIndexSet::build(&g, &schema);
        for parts in [1, 2, 4] {
            for threads in [1, 2] {
                let spec = PartitionSpec::hash(parts);
                let sharded = ShardedIndexSet::build(&g, &schema, &spec, threads);
                assert_eq!(sharded.partition_count(), parts);
                let merged = sharded.merged();
                for (id, full_ix) in full.iter() {
                    let m = merged.get(id).unwrap();
                    assert_eq!(m.key_count(), full_ix.key_count(), "P={parts} T={threads}");
                    assert_eq!(m.size(), full_ix.size(), "P={parts} T={threads}");
                }
            }
        }
    }

    #[test]
    fn fanned_out_lookups_equal_single_shard_lookups() {
        let (g, schema) = toy();
        let full = AccessIndexSet::build(&g, &schema);
        let spec = PartitionSpec::hash(3);
        let sharded = ShardedIndexSet::build(&g, &schema, &spec, 2);
        let user = g.interner().get("user").unwrap();
        let users: Vec<NodeId> = g.nodes_with_label(user).to_vec();
        let lookup = |id: ConstraintId, key: &[NodeId]| {
            (
                full.get(id).unwrap().common_neighbors(key).to_vec(),
                sharded.common_neighbors(id, key),
            )
        };
        let (want, got) = lookup(ConstraintId(0), &[]);
        assert_eq!(got, want, "global key");
        for &u in &users {
            let (want, got) = lookup(ConstraintId(1), &[u]);
            assert_eq!(got, want, "unary key {u}");
            for &w in &users {
                if u < w {
                    let (want, got) = lookup(ConstraintId(2), &[u, w]);
                    assert_eq!(got, want, "binary key ({u}, {w})");
                }
            }
        }
        for (id, ix) in full.iter() {
            assert_eq!(sharded.is_truncated(id), ix.is_truncated());
        }
    }

    #[test]
    fn per_shard_maintenance_tracks_the_full_rebuild() {
        let (g, schema) = toy();
        let spec = PartitionSpec::hash(3);
        let mut sharded = ShardedIndexSet::build(&g, &schema, &spec, 2);
        let mut full = AccessIndexSet::build(&g, &schema);

        let user = g.interner().get("user").unwrap();
        let item = g.interner().get("item").unwrap();
        let users: Vec<NodeId> = g.nodes_with_label(user).to_vec();
        let items: Vec<NodeId> = g.nodes_with_label(item).to_vec();

        let mut g2 = g.clone();
        let mut deltas = Vec::new();
        g2.insert_edge(users[0], items[7]).unwrap();
        deltas.push(GraphDelta::InsertEdge(users[0], items[7]));
        for e in g2.delete_node(users[5]).unwrap() {
            deltas.push(GraphDelta::DeleteEdge(e.src, e.dst));
        }
        deltas.push(GraphDelta::DeleteNode(users[5]));

        let stats = sharded.apply_deltas(&g2, &deltas, 2);
        assert_eq!(stats.len(), 3);
        apply_deltas(&mut full, &g2, &deltas);

        // Each maintained shard equals a fresh filtered rebuild...
        let rebuilt = ShardedIndexSet::build(&g2, &schema, &spec, 2);
        for (p, (maintained, fresh)) in sharded.shards().iter().zip(rebuilt.shards()).enumerate() {
            for (id, fresh_ix) in fresh.iter() {
                let m = maintained.get(id).unwrap();
                assert_eq!(m.key_count(), fresh_ix.key_count(), "shard {p} drifted");
                assert_eq!(m.size(), fresh_ix.size(), "shard {p} drifted");
            }
        }
        // ...and fan-out lookups equal the maintained full set's.
        for &u in g2.nodes_with_label(user) {
            assert_eq!(
                sharded.common_neighbors(ConstraintId(1), &[u]),
                full.get(ConstraintId(1)).unwrap().common_neighbors(&[u])
            );
        }
    }
}
