//! The `Shards` section of the `.bgpq` snapshot container.
//!
//! Persists a [`PartitionSpec`] plus one independently-decodable index blob
//! per shard, so a snapshot compiled once with `--partitions N` loads its
//! per-partition indices **in parallel** — the blobs are length-prefixed and
//! self-contained (each is a full `bgpq-access` indices payload), letting
//! one worker decode each shard without touching the others' bytes.
//!
//! The section is optional by design: readers without sharding support skip
//! unknown section ids, so a sharded snapshot still opens everywhere — the
//! extra section only lights up partitioned execution where this crate is
//! linked.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! u8  spec kind            0 = hash, 1 = label-range
//! u32 partitions           P
//! [label-range only] u32 assignment count, then (u32 label, u32 shard)*
//! u32 shard count          == P
//! per shard: u64 blob length, then the bgpq-access indices payload
//! ```

use crate::index::ShardedIndexSet;
use crate::partition::PartitionSpec;
use crate::pool::parallel_map;
use bgpq_access::{
    decode_bundle, decode_index_set, encode_index_set, write_snapshot_with_sections, AccessSchema,
    SnapshotBundle,
};
use bgpq_graph::io::snapshot::{
    Section, SectionReader, SectionWriter, SnapshotArchive, SnapshotError,
};
use bgpq_graph::{Graph, Label};
use std::path::Path;

/// Encodes `indices` (and the spec it was partitioned under) as the payload
/// of a [`Section::Shards`] section.
pub fn encode_shards_section(indices: &ShardedIndexSet) -> Vec<u8> {
    let mut w = SectionWriter::new();
    let spec = indices.spec();
    w.put_u8(spec.kind());
    w.put_u32(spec.partitions() as u32);
    if let PartitionSpec::LabelRange { assignments, .. } = spec {
        w.put_u32(assignments.len() as u32);
        for &(label, shard) in assignments {
            w.put_u32(label.0);
            w.put_u32(shard);
        }
    }
    w.put_u32(indices.partition_count() as u32);
    for shard in indices.shards() {
        let blob = encode_index_set(shard);
        w.put_u64(blob.len() as u64);
        w.put_bytes(&blob);
    }
    w.into_bytes()
}

/// Decodes a [`Section::Shards`] payload back into a [`ShardedIndexSet`],
/// decoding the per-shard blobs on up to `threads` workers.
///
/// `graph` and `schema` must be the ones decoded from the surrounding
/// container — the blobs reference node ids and constraint ids and carry no
/// copies of either.
pub fn decode_shards_section(
    bytes: &[u8],
    graph: &Graph,
    schema: &AccessSchema,
    threads: usize,
) -> Result<ShardedIndexSet, SnapshotError> {
    let mut r = SectionReader::new(Section::Shards, bytes);
    let kind = r.read_u8()?;
    let partitions = r.read_u32()? as usize;
    if partitions == 0 {
        return Err(r.corrupt("shard section with zero partitions"));
    }
    let spec = match kind {
        0 => PartitionSpec::hash(partitions),
        1 => {
            let count = r.read_u32()? as usize;
            let mut assignments = Vec::with_capacity(count);
            let mut last_label: Option<u32> = None;
            for _ in 0..count {
                let label = r.read_u32()?;
                let shard = r.read_u32()?;
                if shard >= partitions as u32 {
                    return Err(
                        r.corrupt(format!("label assigned to shard {shard} >= {partitions}"))
                    );
                }
                if last_label.is_some_and(|prev| prev >= label) {
                    return Err(r.corrupt("label assignments must be strictly sorted"));
                }
                last_label = Some(label);
                assignments.push((Label(label), shard));
            }
            PartitionSpec::LabelRange {
                partitions: partitions as u32,
                assignments,
            }
        }
        other => return Err(r.corrupt(format!("unknown partition spec kind {other}"))),
    };
    let shard_count = r.read_u32()? as usize;
    if shard_count != partitions {
        return Err(r.corrupt(format!(
            "shard count {shard_count} does not match partition count {partitions}"
        )));
    }
    let mut blobs: Vec<&[u8]> = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let len = r.read_u64()? as usize;
        blobs.push(r.read_bytes(len)?);
    }
    r.expect_end()?;
    let decoded = parallel_map(threads, &blobs, |_, blob| {
        decode_index_set(Section::Shards, blob, graph, schema)
    });
    let mut shards = Vec::with_capacity(decoded.len());
    for set in decoded {
        shards.push(set?);
    }
    Ok(ShardedIndexSet::from_parts(spec, shards))
}

/// Saves a partitioned snapshot to `path`: the standard graph / schema /
/// indices sections (the indices written are the **merged** single-shard
/// set, so any reader opens the file) plus a [`Section::Shards`] section
/// carrying the spec and the per-shard blobs.
pub fn save_sharded_snapshot(
    graph: &Graph,
    indices: &ShardedIndexSet,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    let merged = indices.merged();
    let file = std::fs::File::create(path)?;
    write_snapshot_with_sections(
        graph,
        &merged,
        [(Section::Shards, encode_shards_section(indices))],
        file,
    )
}

/// Loads a snapshot from `path` together with its per-shard indices, when a
/// [`Section::Shards`] section is present (blobs decoded on up to `threads`
/// workers). Snapshots compiled without `--partitions` load with `None` —
/// callers fall back to serial execution or re-partition in memory.
pub fn load_sharded_snapshot(
    path: impl AsRef<Path>,
    threads: usize,
) -> Result<(SnapshotBundle, Option<ShardedIndexSet>), SnapshotError> {
    let archive = SnapshotArchive::open(path)?;
    let bundle = decode_bundle(&archive)?;
    let sharded = match archive.section(Section::Shards) {
        Some(bytes) => Some(decode_shards_section(
            bytes,
            &bundle.graph,
            &bundle.schema,
            threads,
        )?),
        None => None,
    };
    Ok((bundle, sharded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::{AccessConstraint, ConstraintId};
    use bgpq_graph::{GraphBuilder, Value};

    fn setup() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let users: Vec<_> = (0..10).map(|i| b.add_node("user", Value::Int(i))).collect();
        for i in 0..20i64 {
            let p = b.add_node("post", Value::Int(i));
            b.add_edge(users[(i % 10) as usize], p).unwrap();
        }
        let g = b.build();
        let l = |n: &str| g.interner().get(n).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("user"), 10),
            AccessConstraint::unary(l("user"), l("post"), 2),
        ]);
        (g, schema)
    }

    fn assert_round_trips(spec: PartitionSpec, threads: usize) {
        let (g, schema) = setup();
        let indices = ShardedIndexSet::build(&g, &schema, &spec, threads);
        let payload = encode_shards_section(&indices);
        let decoded = decode_shards_section(&payload, &g, &schema, threads).unwrap();
        assert_eq!(decoded.spec(), indices.spec());
        assert_eq!(decoded.partition_count(), indices.partition_count());
        for (a, b) in decoded.shards().iter().zip(indices.shards()) {
            for (id, ix) in b.iter() {
                let d = a.get(id).unwrap();
                assert_eq!(d.key_count(), ix.key_count());
                assert_eq!(d.size(), ix.size());
                assert_eq!(d.is_truncated(), ix.is_truncated());
                for (key, answers) in ix.entries() {
                    assert_eq!(d.common_neighbors(key), answers);
                }
            }
        }
    }

    #[test]
    fn hash_spec_round_trips_across_thread_counts() {
        for threads in [1, 2, 4] {
            assert_round_trips(PartitionSpec::hash(3), threads);
        }
    }

    #[test]
    fn label_range_spec_round_trips() {
        let (g, _) = setup();
        assert_round_trips(PartitionSpec::label_range(&g, 2), 2);
    }

    #[test]
    fn decoded_set_answers_like_the_original() {
        let (g, schema) = setup();
        let spec = PartitionSpec::hash(4);
        let indices = ShardedIndexSet::build(&g, &schema, &spec, 2);
        let payload = encode_shards_section(&indices);
        let decoded = decode_shards_section(&payload, &g, &schema, 2).unwrap();
        let user = g.interner().get("user").unwrap();
        for &u in g.nodes_with_label(user) {
            assert_eq!(
                decoded.common_neighbors(ConstraintId(1), &[u]),
                indices.common_neighbors(ConstraintId(1), &[u])
            );
        }
    }

    #[test]
    fn sharded_snapshot_file_round_trips_and_opens_unsharded() {
        let (g, schema) = setup();
        let spec = PartitionSpec::hash(3);
        let indices = ShardedIndexSet::build(&g, &schema, &spec, 2);
        let dir = std::env::temp_dir().join(format!("bgpq-shard-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.bgpq");

        save_sharded_snapshot(&g, &indices, &path).unwrap();

        // A sharding-aware loader gets the per-shard sets back.
        let (bundle, sharded) = load_sharded_snapshot(&path, 2).unwrap();
        let sharded = sharded.expect("shards section must be present");
        assert_eq!(sharded.partition_count(), 3);
        assert_eq!(bundle.schema, schema);
        // The embedded merged indices equal the shard union, so the file
        // also answers correctly for readers that ignore the section.
        let merged = indices.merged();
        for (id, ix) in merged.iter() {
            let loaded = bundle.indices.get(id).unwrap();
            assert_eq!(loaded.key_count(), ix.key_count());
            assert_eq!(loaded.size(), ix.size());
        }
        // A plain loader simply skips the Shards section.
        let plain = bgpq_access::load_snapshot(&path).unwrap();
        assert_eq!(plain.graph.node_count(), g.node_count());

        // An unsharded snapshot loads with None.
        let plain_path = dir.join("plain.bgpq");
        bgpq_access::save_snapshot(&g, &merged, &plain_path).unwrap();
        let (_, none) = load_sharded_snapshot(&plain_path, 2).unwrap();
        assert!(none.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_misread() {
        let (g, schema) = setup();
        let indices = ShardedIndexSet::build(&g, &schema, &PartitionSpec::hash(2), 1);
        let good = encode_shards_section(&indices);

        // Unknown spec kind.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(decode_shards_section(&bad, &g, &schema, 1).is_err());

        // Zero partitions.
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_shards_section(&bad, &g, &schema, 1).is_err());

        // Truncated mid-blob.
        let bad = &good[..good.len() - 3];
        assert!(decode_shards_section(bad, &g, &schema, 1).is_err());

        // Trailing garbage.
        let mut bad = good;
        bad.push(0xAB);
        assert!(decode_shards_section(&bad, &g, &schema, 1).is_err());
    }
}
