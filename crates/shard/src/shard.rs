//! Partitioned graph storage: [`Shard`] and [`ShardedGraph`].
//!
//! A [`ShardedGraph`] splits a [`Graph`] into `P` shards under a
//! [`PartitionSpec`]. Each shard carries the slice of the graph it owns —
//! its node set, a [`LabelIndex`] over those nodes, and a CSR adjacency
//! slice holding the *intra-shard* edges — while edges whose endpoints live
//! in different shards are stitched into a cross-partition edge map on the
//! sharded graph itself. The parent graph is not consumed: shards speak
//! parent node ids throughout (the same no-remapping discipline as
//! [`bgpq_graph::FragmentView`]), so per-shard answers union without
//! translation.
//!
//! Shard construction is embarrassingly parallel (one worker per shard over
//! a precomputed ownership vector) and deterministic: shard `p`'s content
//! depends only on the graph and the spec, never on thread scheduling.

use crate::partition::PartitionSpec;
use crate::pool::parallel_map;
use bgpq_graph::{Graph, LabelIndex, NodeId};

/// An edge whose endpoints live in different shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdge {
    /// Source node (owned by [`CrossEdge::src_shard`]).
    pub src: NodeId,
    /// Destination node (owned by [`CrossEdge::dst_shard`]).
    pub dst: NodeId,
    /// The shard owning `src`.
    pub src_shard: u32,
    /// The shard owning `dst`.
    pub dst_shard: u32,
}

/// One partition of a [`ShardedGraph`]: the nodes a spec assigns to it,
/// their label index, and the intra-shard adjacency in CSR form.
#[derive(Debug, Clone)]
pub struct Shard {
    id: u32,
    /// Owned live nodes, sorted by id (parent ids).
    nodes: Vec<NodeId>,
    /// Label → owned nodes carrying it.
    label_index: LabelIndex,
    /// CSR offsets into [`Shard::out_adj`], one slot per owned node (in
    /// `nodes` order) plus a trailing end offset.
    out_start: Vec<u32>,
    /// Intra-shard out-neighbors, grouped per owned node.
    out_adj: Vec<NodeId>,
    /// CSR offsets into [`Shard::in_adj`].
    in_start: Vec<u32>,
    /// Intra-shard in-neighbors, grouped per owned node.
    in_adj: Vec<NodeId>,
}

impl Shard {
    /// This shard's id (its position in [`ShardedGraph::shards`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The owned live nodes, sorted by parent id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of owned live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Label index over the owned nodes.
    pub fn label_index(&self) -> &LabelIndex {
        &self.label_index
    }

    /// Number of intra-shard edges (both endpoints owned here).
    pub fn internal_edge_count(&self) -> usize {
        self.out_adj.len()
    }

    /// The local position of `v` in this shard, if owned.
    fn slot_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Intra-shard out-neighbors of `v`; `None` when `v` is not owned here.
    pub fn out_neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        let slot = self.slot_of(v)?;
        Some(&self.out_adj[self.out_start[slot] as usize..self.out_start[slot + 1] as usize])
    }

    /// Intra-shard in-neighbors of `v`; `None` when `v` is not owned here.
    pub fn in_neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        let slot = self.slot_of(v)?;
        Some(&self.in_adj[self.in_start[slot] as usize..self.in_start[slot + 1] as usize])
    }
}

/// A [`Graph`] partitioned into shards plus the cross-partition edge map.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    spec: PartitionSpec,
    /// Node index → owning shard; `u32::MAX` for tombstoned slots.
    assignment: Vec<u32>,
    shards: Vec<Shard>,
    /// Edges crossing shard boundaries, sorted by `(src, dst)`.
    cross_edges: Vec<CrossEdge>,
}

impl ShardedGraph {
    /// Partitions `graph` under `spec`, building shards on up to `threads`
    /// workers. Deterministic for any thread count.
    pub fn build(graph: &Graph, spec: PartitionSpec, threads: usize) -> Self {
        let assignment: Vec<u32> = graph
            .nodes()
            .map(|v| {
                if graph.is_live(v) {
                    spec.shard_of(v, graph.label(v))
                } else {
                    u32::MAX
                }
            })
            .collect();
        let ids: Vec<u32> = (0..spec.partitions() as u32).collect();
        let built = parallel_map(threads, &ids, |_, &p| build_shard(graph, &assignment, p));
        let mut shards = Vec::with_capacity(built.len());
        let mut cross_edges = Vec::new();
        for (shard, crossing) in built {
            shards.push(shard);
            cross_edges.extend(crossing);
        }
        cross_edges.sort_unstable_by_key(|e| (e.src, e.dst));
        ShardedGraph {
            spec,
            assignment,
            shards,
            cross_edges,
        }
    }

    /// The partitioning spec this graph was built with.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The shards, in shard-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of partitions `P`.
    pub fn partition_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `v`, or `None` for tombstoned/out-of-range slots.
    pub fn shard_of(&self, v: NodeId) -> Option<u32> {
        match self.assignment.get(v.index()) {
            Some(&s) if s != u32::MAX => Some(s),
            _ => None,
        }
    }

    /// True when shard `p` owns `v` — the ownership predicate per-partition
    /// index builds and filtered maintenance close over.
    pub fn owns(&self, p: u32, v: NodeId) -> bool {
        self.shard_of(v) == Some(p)
    }

    /// The cross-partition edge map, sorted by `(src, dst)`.
    pub fn cross_edges(&self) -> &[CrossEdge] {
        &self.cross_edges
    }

    /// Total live nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(Shard::node_count).sum()
    }

    /// Total edges: intra-shard plus crossing.
    pub fn edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(Shard::internal_edge_count)
            .sum::<usize>()
            + self.cross_edges.len()
    }
}

/// Builds shard `p` from the ownership vector: owned nodes in id order,
/// their label index, the intra-shard CSR, and the crossing out-edges
/// (attributed to the source's shard so each crossing edge appears once).
fn build_shard(graph: &Graph, assignment: &[u32], p: u32) -> (Shard, Vec<CrossEdge>) {
    let nodes: Vec<NodeId> = graph
        .nodes()
        .filter(|v| assignment[v.index()] == p)
        .collect();
    let mut label_index = LabelIndex::default();
    let mut out_start = Vec::with_capacity(nodes.len() + 1);
    let mut out_adj = Vec::new();
    let mut in_start = Vec::with_capacity(nodes.len() + 1);
    let mut in_adj = Vec::new();
    let mut crossing = Vec::new();
    out_start.push(0);
    in_start.push(0);
    for &v in &nodes {
        label_index.insert(graph.label(v), v);
        for &w in graph.out_neighbors(v) {
            let dst_shard = assignment[w.index()];
            if dst_shard == p {
                out_adj.push(w);
            } else {
                crossing.push(CrossEdge {
                    src: v,
                    dst: w,
                    src_shard: p,
                    dst_shard,
                });
            }
        }
        out_start.push(out_adj.len() as u32);
        in_adj.extend(
            graph
                .in_neighbors(v)
                .iter()
                .copied()
                .filter(|w| assignment[w.index()] == p),
        );
        in_start.push(in_adj.len() as u32);
    }
    (
        Shard {
            id: p,
            nodes,
            label_index,
            out_start,
            out_adj,
            in_start,
            in_adj,
        },
        crossing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};

    fn chain_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                b.add_node(
                    if i % 2 == 0 { "even" } else { "odd" },
                    Value::Int(i as i64),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build()
    }

    #[test]
    fn shards_partition_nodes_and_edges_exactly() {
        let g = chain_graph(50);
        for parts in [1, 2, 4] {
            for threads in [1, 2] {
                let sg = ShardedGraph::build(&g, PartitionSpec::hash(parts), threads);
                assert_eq!(sg.partition_count(), parts);
                assert_eq!(sg.node_count(), g.live_node_count());
                assert_eq!(sg.edge_count(), g.edge_count());
                // Every node is owned exactly once, by the shard the spec says.
                for v in g.nodes() {
                    let owner = sg.shard_of(v).unwrap();
                    assert_eq!(owner, sg.spec().shard_of(v, g.label(v)));
                    let owning: Vec<_> = sg
                        .shards()
                        .iter()
                        .filter(|s| s.nodes().binary_search(&v).is_ok())
                        .collect();
                    assert_eq!(owning.len(), 1);
                    assert_eq!(owning[0].id(), owner);
                }
            }
        }
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        let g = chain_graph(64);
        let serial = ShardedGraph::build(&g, PartitionSpec::hash(4), 1);
        let parallel = ShardedGraph::build(&g, PartitionSpec::hash(4), 4);
        assert_eq!(serial.cross_edges(), parallel.cross_edges());
        for (a, b) in serial.shards().iter().zip(parallel.shards()) {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.internal_edge_count(), b.internal_edge_count());
            for &v in a.nodes() {
                assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
                assert_eq!(a.in_neighbors(v), b.in_neighbors(v));
            }
        }
    }

    #[test]
    fn csr_slices_agree_with_the_parent_graph() {
        let g = chain_graph(30);
        let sg = ShardedGraph::build(&g, PartitionSpec::hash(3), 2);
        for shard in sg.shards() {
            for &v in shard.nodes() {
                let intra: Vec<NodeId> = g
                    .out_neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| sg.owns(shard.id(), w))
                    .collect();
                assert_eq!(shard.out_neighbors(v).unwrap(), intra.as_slice());
                let cross = g.out_neighbors(v).len() - intra.len();
                let mapped = sg.cross_edges().iter().filter(|e| e.src == v).count();
                assert_eq!(cross, mapped, "crossing out-edges of {v:?} must be mapped");
            }
            // Label index covers exactly the owned nodes.
            let indexed: usize = shard.label_index().iter().map(|(_, ns)| ns.len()).sum();
            assert_eq!(indexed, shard.node_count());
        }
        // Foreign lookups answer None, not garbage.
        let foreign = sg.shards()[0].nodes().first().copied().unwrap_or(NodeId(0));
        for shard in sg.shards().iter().skip(1) {
            assert!(shard.out_neighbors(foreign).is_none() || sg.owns(shard.id(), foreign));
        }
    }

    #[test]
    fn label_range_spec_keeps_labels_whole() {
        let g = chain_graph(40);
        let spec = PartitionSpec::label_range(&g, 2);
        let sg = ShardedGraph::build(&g, spec, 2);
        let even = g.interner().get("even").unwrap();
        let odd = g.interner().get("odd").unwrap();
        for shard in sg.shards() {
            // A shard either owns all nodes of a label or none of them.
            for &label in &[even, odd] {
                let here = shard.label_index().count(label);
                assert!(here == 0 || here == g.label_count(label));
            }
        }
        assert_eq!(sg.node_count(), g.node_count());
    }

    #[test]
    fn tombstoned_nodes_are_unowned() {
        let mut g = chain_graph(10);
        g.delete_node(NodeId(4)).unwrap();
        let sg = ShardedGraph::build(&g, PartitionSpec::hash(2), 1);
        assert_eq!(sg.shard_of(NodeId(4)), None);
        assert_eq!(sg.node_count(), g.live_node_count());
        assert_eq!(sg.edge_count(), g.edge_count());
    }
}
