//! The dependency-free parallel work pool.
//!
//! Every parallel phase of this crate — shard builds, per-partition index
//! builds, fetch fan-out, pivot-split matching, snapshot load — runs on the
//! same primitive: [`parallel_map`], a scoped fork-join over a slice with an
//! atomic work cursor. `std::thread::scope` keeps it borrow-friendly (no
//! `'static` bounds, no `Arc` plumbing) and dependency-free, like the rest
//! of the workspace; workers pull indices from the shared cursor so skewed
//! item costs self-balance.
//!
//! Results are returned **in item order** regardless of which worker
//! computed what — parallelism here must never be observable in outputs
//! (see the crate-level determinism rule).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results in item order. `f` receives `(index, item)`.
///
/// With `threads <= 1`, a single item, or an empty slice the map runs
/// inline on the caller's thread — callers pick the thread budget, the
/// pool never spawns speculatively.
pub fn parallel_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(i, item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect::<Vec<_>>()
    });
    for (i, r) in chunks.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// size (the first `len % parts` ranges one longer). Used to slice a pivot
/// candidate set across workers: contiguous ranges of a sorted set keep
/// each worker's slice sorted, and the concatenation is disjoint-complete.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = parallel_map(8, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(8, &[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (16, 4), (1, 1)] {
            let ranges = split_ranges(len, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
            assert_eq!(expect, len, "ranges must cover 0..{len}");
        }
    }
}
