//! The bundle a session engine attaches to turn on partitioned execution.
//!
//! [`ShardRuntime`] owns everything the parallel path needs — the
//! [`ShardedGraph`], the per-partition [`ShardedIndexSet`], a worker-pinned
//! [`ArenaPool`] and the thread budget — behind one handle, so the engine
//! keeps its serial fields untouched and merely consults the runtime when a
//! request is eligible for the parallel path. [`ShardConfig`] is the
//! user-facing knob set (`--partitions` / `--threads` on the CLI).

use crate::index::ShardedIndexSet;
use crate::partition::PartitionSpec;
use crate::shard::ShardedGraph;
use bgpq_access::{AccessIndexSet, AccessSchema, GraphDelta, MaintenanceStats};
use bgpq_graph::{ArenaPool, Graph};

/// Which [`PartitionSpec`] family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// FNV-1a over node ids — label oblivious, balanced, the default.
    #[default]
    Hash,
    /// Labels pinned to shards, balanced by the label histogram.
    LabelRange,
}

impl std::str::FromStr for PartitionScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(PartitionScheme::Hash),
            "label-range" | "label_range" => Ok(PartitionScheme::LabelRange),
            other => Err(format!(
                "unknown partition scheme '{other}' (expected 'hash' or 'label-range')"
            )),
        }
    }
}

/// User-facing partitioned-execution knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of partitions `P` (clamped to at least 1).
    pub partitions: usize,
    /// Worker-thread budget for every parallel phase (clamped to at
    /// least 1; `1` means serial execution on shard-partitioned state).
    pub threads: usize,
    /// Partitioning family.
    pub scheme: PartitionScheme,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            partitions: 1,
            threads: 1,
            scheme: PartitionScheme::Hash,
        }
    }
}

impl ShardConfig {
    /// A hash-partitioned config with `partitions` shards and `threads`
    /// workers.
    pub fn new(partitions: usize, threads: usize) -> Self {
        ShardConfig {
            partitions: partitions.max(1),
            threads: threads.max(1),
            scheme: PartitionScheme::Hash,
        }
    }

    /// Replaces the partitioning family.
    pub fn with_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The spec this config selects for `graph`.
    pub fn spec_for(&self, graph: &Graph) -> PartitionSpec {
        match self.scheme {
            PartitionScheme::Hash => PartitionSpec::hash(self.partitions),
            PartitionScheme::LabelRange => PartitionSpec::label_range(graph, self.partitions),
        }
    }
}

/// Partitioned-execution state: sharded graph, per-shard indices, worker
/// arenas and the thread budget.
#[derive(Debug)]
pub struct ShardRuntime {
    config: ShardConfig,
    sharded: ShardedGraph,
    indices: ShardedIndexSet,
    pool: ArenaPool,
}

impl ShardRuntime {
    /// Partitions `graph` and builds the per-shard indices for `schema`,
    /// both on up to `config.threads` workers.
    pub fn build(graph: &Graph, schema: &AccessSchema, config: ShardConfig) -> Self {
        let spec = config.spec_for(graph);
        let sharded = ShardedGraph::build(graph, spec.clone(), config.threads);
        let indices = ShardedIndexSet::build(graph, schema, &spec, config.threads);
        ShardRuntime {
            config,
            sharded,
            indices,
            pool: ArenaPool::new(config.threads.max(1)),
        }
    }

    /// Assembles a runtime from already-built per-shard index sets (the
    /// snapshot-load path): only the sharded graph is rebuilt, the index
    /// blobs are trusted as decoded.
    pub fn from_indices(graph: &Graph, indices: ShardedIndexSet, threads: usize) -> Self {
        let spec = indices.spec().clone();
        let config = ShardConfig {
            partitions: spec.partitions(),
            threads: threads.max(1),
            scheme: match spec {
                PartitionSpec::Hash { .. } => PartitionScheme::Hash,
                PartitionSpec::LabelRange { .. } => PartitionScheme::LabelRange,
            },
        };
        let sharded = ShardedGraph::build(graph, spec, config.threads);
        ShardRuntime {
            config,
            sharded,
            indices,
            pool: ArenaPool::new(config.threads),
        }
    }

    /// The knobs this runtime was built with.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// The partitioning spec.
    pub fn spec(&self) -> &PartitionSpec {
        self.sharded.spec()
    }

    /// The partitioned graph.
    pub fn sharded_graph(&self) -> &ShardedGraph {
        &self.sharded
    }

    /// The per-shard indices.
    pub fn indices(&self) -> &ShardedIndexSet {
        &self.indices
    }

    /// Worker-thread budget.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.sharded.partition_count()
    }

    /// The worker-pinned arena pool parallel matching runs on.
    pub fn pool(&self) -> &ArenaPool {
        &self.pool
    }

    /// Merges the per-shard indices into the exact single-build set.
    pub fn merged_indices(&self) -> AccessIndexSet {
        self.indices.merged()
    }

    /// Applies a committed delta batch: per-shard index maintenance (one
    /// worker per shard) plus a rebuild of the sharded graph topology.
    /// `new_graph` must already reflect the deltas.
    pub fn apply_deltas(
        &mut self,
        new_graph: &Graph,
        deltas: &[GraphDelta],
    ) -> Vec<MaintenanceStats> {
        let stats = self
            .indices
            .apply_deltas(new_graph, deltas, self.config.threads);
        self.sharded =
            ShardedGraph::build(new_graph, self.indices.spec().clone(), self.config.threads);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::AccessConstraint;
    use bgpq_graph::{GraphBuilder, NodeId, Value};

    fn setup() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        for i in 0..20 {
            let leaf = b.add_node("leaf", Value::Int(i));
            b.add_edge(hub, leaf).unwrap();
        }
        let g = b.build();
        let l = |n: &str| g.interner().get(n).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("hub"), 1),
            AccessConstraint::unary(l("hub"), l("leaf"), 20),
        ]);
        (g, schema)
    }

    #[test]
    fn build_wires_all_parts_consistently() {
        let (g, schema) = setup();
        let rt = ShardRuntime::build(&g, &schema, ShardConfig::new(3, 2));
        assert_eq!(rt.partitions(), 3);
        assert_eq!(rt.threads(), 2);
        assert_eq!(rt.indices().partition_count(), 3);
        assert_eq!(rt.sharded_graph().node_count(), g.live_node_count());
        assert!(rt.pool().workers() >= 2);
        // Merged indices equal a direct single build.
        let full = AccessIndexSet::build(&g, &schema);
        let merged = rt.merged_indices();
        for (id, ix) in full.iter() {
            assert_eq!(merged.get(id).unwrap().size(), ix.size());
        }
    }

    #[test]
    fn scheme_parses_from_cli_spellings() {
        assert_eq!("hash".parse(), Ok(PartitionScheme::Hash));
        assert_eq!("label-range".parse(), Ok(PartitionScheme::LabelRange));
        assert!("banana".parse::<PartitionScheme>().is_err());
    }

    #[test]
    fn deltas_update_indices_and_topology() {
        let (g, schema) = setup();
        let mut rt = ShardRuntime::build(&g, &schema, ShardConfig::new(2, 2));
        let mut g2 = g.clone();
        let mut deltas = Vec::new();
        let leaf = NodeId(5);
        for e in g2.delete_node(leaf).unwrap() {
            deltas.push(GraphDelta::DeleteEdge(e.src, e.dst));
        }
        deltas.push(GraphDelta::DeleteNode(leaf));
        let stats = rt.apply_deltas(&g2, &deltas);
        assert_eq!(stats.len(), 2);
        assert_eq!(rt.sharded_graph().node_count(), g2.live_node_count());
        // Maintained indices equal a fresh rebuild.
        let fresh = ShardRuntime::build(&g2, &schema, ShardConfig::new(2, 2));
        for (a, b) in rt.indices().shards().iter().zip(fresh.indices().shards()) {
            for (id, ix) in b.iter() {
                assert_eq!(a.get(id).unwrap().size(), ix.size());
            }
        }
    }
}
