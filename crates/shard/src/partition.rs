//! The pure `node → shard` partitioning function.
//!
//! Everything sharded in this crate — shard builds, per-partition index
//! builds, incremental maintenance, snapshot load — must agree on which
//! shard owns a node, including after arbitrary delta streams. The spec is
//! therefore a *pure function of the node id and its label*: no build-time
//! state (degrees, orderings, load counters) may leak into the decision, or
//! a maintained sharded index would drift from a rebuilt one.

use bgpq_graph::{Graph, Label, NodeId};

/// How a graph is split into `P` partitions.
///
/// * [`PartitionSpec::Hash`] — FNV-1a over the node id, modulo `P`. Label
///   oblivious, always balanced to within hash noise; the default.
/// * [`PartitionSpec::LabelRange`] — each label is pinned to one shard
///   (balanced by label frequency at spec-construction time); nodes of
///   unassigned labels fall back to the hash rule. Groups same-labeled
///   nodes, so per-shard label indexes and global constraints stay local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Hash-over-node-ids partitioning.
    Hash {
        /// Number of partitions `P` (at least 1).
        partitions: u32,
    },
    /// Label-range partitioning with a hash fallback for unseen labels.
    LabelRange {
        /// Number of partitions `P` (at least 1).
        partitions: u32,
        /// `label → shard` assignment, sorted by label id for binary search.
        assignments: Vec<(Label, u32)>,
    },
}

impl PartitionSpec {
    /// The hash spec over `partitions` shards (at least one).
    pub fn hash(partitions: usize) -> Self {
        PartitionSpec::Hash {
            partitions: partitions.max(1) as u32,
        }
    }

    /// A label-range spec over `partitions` shards, balanced greedily by
    /// the label histogram of `graph`: labels in decreasing frequency order
    /// are pinned to the currently lightest shard.
    pub fn label_range(graph: &Graph, partitions: usize) -> Self {
        let partitions = partitions.max(1) as u32;
        let mut histogram: Vec<(Label, usize)> = graph
            .label_index()
            .iter()
            .map(|(label, nodes)| (label, nodes.len()))
            .collect();
        // Heaviest first; ties by label id so the spec is deterministic.
        histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        let mut load = vec![0usize; partitions as usize];
        let mut assignments: Vec<(Label, u32)> = Vec::with_capacity(histogram.len());
        for (label, count) in histogram {
            let lightest = (0..partitions).min_by_key(|&p| load[p as usize]).unwrap();
            load[lightest as usize] += count;
            assignments.push((label, lightest));
        }
        assignments.sort_by_key(|&(label, _)| label.0);
        PartitionSpec::LabelRange {
            partitions,
            assignments,
        }
    }

    /// Number of partitions `P`.
    pub fn partitions(&self) -> usize {
        match *self {
            PartitionSpec::Hash { partitions } | PartitionSpec::LabelRange { partitions, .. } => {
                partitions as usize
            }
        }
    }

    /// The shard owning a node: a pure function of `(node, label)`.
    pub fn shard_of(&self, node: NodeId, label: Label) -> u32 {
        match self {
            PartitionSpec::Hash { partitions } => hash_shard(node, *partitions),
            PartitionSpec::LabelRange {
                partitions,
                assignments,
            } => match assignments.binary_search_by_key(&label.0, |&(l, _)| l.0) {
                Ok(i) => assignments[i].1,
                Err(_) => hash_shard(node, *partitions),
            },
        }
    }

    /// The on-disk discriminant of this spec kind (see [`crate::snapshot`]).
    pub fn kind(&self) -> u8 {
        match self {
            PartitionSpec::Hash { .. } => 0,
            PartitionSpec::LabelRange { .. } => 1,
        }
    }
}

/// FNV-1a over the node id's little-endian bytes, folded modulo `P`.
fn hash_shard(node: NodeId, partitions: u32) -> u32 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in node.0.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % partitions as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};

    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..40 {
            b.add_node("a", Value::Int(i));
        }
        for i in 0..10 {
            b.add_node("b", Value::Int(i));
        }
        for i in 0..10 {
            b.add_node("c", Value::Int(i));
        }
        b.build()
    }

    #[test]
    fn hash_spec_is_total_and_stable() {
        let spec = PartitionSpec::hash(4);
        assert_eq!(spec.partitions(), 4);
        let g = toy();
        for v in (0..g.node_count()).map(|i| NodeId(i as u32)) {
            let s = spec.shard_of(v, g.label(v));
            assert!(s < 4);
            assert_eq!(s, spec.shard_of(v, g.label(v)), "must be pure");
            // Hash partitioning ignores the label entirely.
            assert_eq!(s, spec.shard_of(v, Label(999)));
        }
    }

    #[test]
    fn zero_partitions_clamps_to_one() {
        assert_eq!(PartitionSpec::hash(0).partitions(), 1);
        let g = toy();
        assert_eq!(PartitionSpec::label_range(&g, 0).partitions(), 1);
    }

    #[test]
    fn label_range_balances_by_histogram() {
        let g = toy();
        let spec = PartitionSpec::label_range(&g, 2);
        let PartitionSpec::LabelRange {
            ref assignments, ..
        } = spec
        else {
            panic!("expected label-range spec");
        };
        assert_eq!(assignments.len(), 3);
        // The heavy label `a` (40 nodes) sits alone; `b` and `c` share the
        // other shard, so loads are 40 / 20, the best achievable split.
        let la = g.interner().get("a").unwrap();
        let lb = g.interner().get("b").unwrap();
        let lc = g.interner().get("c").unwrap();
        let shard_of_label =
            |l: bgpq_graph::Label| assignments.iter().find(|&&(x, _)| x == l).unwrap().1;
        assert_ne!(shard_of_label(la), shard_of_label(lb));
        assert_eq!(shard_of_label(lb), shard_of_label(lc));
        // Same-labeled nodes always share a shard.
        for v in g.nodes_with_label(la) {
            assert_eq!(spec.shard_of(*v, la), shard_of_label(la));
        }
        // Unknown labels fall back to the hash rule, still in range.
        assert!(spec.shard_of(NodeId(7), Label(700)) < 2);
    }
}
