//! Parallel bounded execution over a [`ShardedIndexSet`].
//!
//! Three entry points mirror the serial pipeline of `bgpq-core`:
//!
//! * [`sharded_fetch_candidate_sets`] — the candidate fetch, with index
//!   lookups fanning out across shards (each fresh key is answered by
//!   concatenating the disjoint per-shard answers and sorting);
//! * [`parallel_bounded_subgraph_match_prefetched`] — `bVF2` with the
//!   deterministic pivot's candidates split into contiguous ranges across
//!   workers, merged through the canonicalizing [`MatchSet::new`];
//! * [`parallel_bounded_simulation_match_prefetched`] — `bSim`; the
//!   fixpoint is a unique relation, so only the fetch parallelizes and the
//!   solve runs serially on one merged fragment view.
//!
//! **Every function here returns results identical to its serial
//! counterpart** for every `(partitions, threads)` combination — candidate
//! sets are sorted unions of disjoint per-shard answers, each `bVF2` match
//! maps the pivot to exactly one candidate (so the range split partitions
//! the match set), and merge goes through canonicalizing constructors.
//! Order-dependent requests (`max_matches` / `max_steps` budgets) take the
//! serial fallback: a budget cuts enumeration *order*-dependently, which a
//! split could change.

use crate::index::ShardedIndexSet;
use crate::pool::{parallel_map, split_ranges};
use bgpq_access::ConstraintId;
use bgpq_core::{
    bounded_simulation_match_prefetched, bounded_subgraph_match_prefetched, CandidateSet,
    FetchStats, QueryPlan,
};
use bgpq_graph::bitset::{dedup_with_bitset, NodeBitSet};
use bgpq_graph::{ArenaPool, FragmentView, Graph, GraphAccess, NodeId};
use bgpq_matching::seed::for_each_combination;
use bgpq_matching::{MatchSet, SimulationRelation, SubgraphMatcher, Vf2Config, Vf2Stats};
use bgpq_pattern::Pattern;
use std::collections::HashMap;
use std::time::Instant;

/// Runs the index-lookup loop of `plan` against sharded indices, producing
/// candidate sets identical — including the [`FetchStats`] lookup counters —
/// to [`bgpq_core::fetch_candidate_sets`] with a fresh memo against the
/// merged single set.
///
/// Steps run in plan order (later steps key off earlier candidates), but
/// within a step every *fresh* canonical key fans out over the shards on up
/// to `threads` workers. Repeated keys — within a step, or across steps —
/// are answered from a local memo and counted as deduplicated, exactly like
/// the serial fetch.
///
/// # Panics
/// Panics if `plan` references constraints absent from the sharded set.
pub fn sharded_fetch_candidate_sets(
    plan: &QueryPlan,
    pattern: &Pattern,
    graph: &Graph,
    sharded: &ShardedIndexSet,
    threads: usize,
) -> CandidateSet {
    let started = Instant::now();
    let n = pattern.node_count();
    let mut candidates: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stats = FetchStats::default();
    // Memoized answers per constraint, keyed by canonical key — the sharded
    // twin of `LookupMemo`, kept local so it can double as the fan-out
    // work-list builder.
    let mut memo: HashMap<ConstraintId, HashMap<Vec<NodeId>, Vec<NodeId>>> = HashMap::new();
    let mut seen = NodeBitSet::with_capacity(graph.node_count());

    for step in &plan.steps {
        assert!(
            sharded
                .shards()
                .iter()
                .all(|s| s.get(step.constraint).is_some()),
            "plan constraint must exist in every shard of the index set"
        );
        // Canonical key per via-combination, in enumeration order.
        let mut occurrences: Vec<Vec<NodeId>> = Vec::new();
        if step.via.is_empty() {
            occurrences.push(Vec::new());
        } else {
            for_each_combination(&step.via, &candidates, &mut |key| {
                let mut canonical = key.to_vec();
                canonical.sort_unstable();
                canonical.dedup();
                occurrences.push(canonical);
            });
        }
        // Fresh keys fan out across shards in parallel; repeats are memo
        // hits, with the same counter semantics as the serial fetch.
        let step_memo = memo.entry(step.constraint).or_default();
        let mut fresh: Vec<Vec<NodeId>> = Vec::new();
        for key in &occurrences {
            if step_memo.contains_key(key) {
                stats.lookups_deduped += 1;
            } else {
                stats.index_lookups += 1;
                step_memo.insert(key.clone(), Vec::new());
                fresh.push(key.clone());
            }
        }
        let answers = parallel_map(threads, &fresh, |_, key| {
            sharded.common_neighbors(step.constraint, key)
        });
        for (key, answer) in fresh.into_iter().zip(answers) {
            step_memo.insert(key, answer);
        }
        let mut fetched: Vec<NodeId> = Vec::new();
        for key in &occurrences {
            fetched.extend_from_slice(&step_memo[key]);
        }
        stats.nodes_returned += fetched.len() as u64;
        dedup_with_bitset(&mut fetched, &mut seen);
        fetched.sort_unstable();
        let before_filter = fetched.len();
        fetched.retain(|&v| pattern.predicate(step.node).eval(graph.value(v)));
        stats.predicate_filtered += (before_filter - fetched.len()) as u64;
        candidates[step.node.index()] = fetched;
    }

    let all_nodes: Vec<NodeId> = {
        let mut v: Vec<NodeId> = candidates.iter().flatten().copied().collect();
        dedup_with_bitset(&mut v, &mut seen);
        v.sort_unstable();
        v
    };
    stats.fragment_build_nanos = started.elapsed().as_nanos() as u64;

    CandidateSet {
        candidates,
        all_nodes,
        stats,
    }
}

/// `bVF2` from an already-fetched [`CandidateSet`], with the search split
/// across up to `threads` workers.
///
/// The pivot is the pattern node with the **largest** candidate set (ties
/// broken by smallest pattern node id — a pure function of the candidate
/// sets, so every thread count picks the same pivot). Its candidates are
/// split into contiguous ranges, one worker each; since every match maps
/// the pivot to exactly one candidate, the per-range match sets partition
/// the full answer, and [`MatchSet::new`] canonicalizes the merge. Each
/// worker builds its own fragment view in a distinct [`ArenaPool`] slot.
///
/// Budgeted configs (`max_matches` / `max_steps`), empty patterns, and
/// `threads <= 1` all take the serial path — identical by construction.
pub fn parallel_bounded_subgraph_match_prefetched(
    pattern: &Pattern,
    graph: &Graph,
    fetched: &CandidateSet,
    config: Vf2Config,
    pool: &ArenaPool,
    threads: usize,
) -> (MatchSet, FetchStats, Vf2Stats) {
    let budgeted = config.max_matches.is_some() || config.max_steps.is_some();
    let pivot = fetched
        .candidates
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.len().cmp(&b.len()).then(j.cmp(i)))
        .map(|(i, _)| i);
    let splittable = pivot.is_some_and(|p| fetched.candidates[p].len() >= 2);
    if budgeted || threads <= 1 || !splittable {
        return pool.with_any(|scratch| {
            bounded_subgraph_match_prefetched(pattern, graph, fetched, config.clone(), scratch)
        });
    }
    let pivot = pivot.expect("splittable implies a pivot");
    let build_started = Instant::now();
    let ranges = split_ranges(fetched.candidates[pivot].len(), threads);
    let parts = parallel_map(ranges.len(), &ranges, |w, range| {
        pool.with_worker(w, |scratch| {
            let view = FragmentView::induced(graph, &fetched.all_nodes, scratch);
            let mut candidates = fetched.candidates.clone();
            candidates[pivot] = candidates[pivot][range.clone()].to_vec();
            let (matches, stats) = SubgraphMatcher::new(pattern, &view)
                .with_candidates(candidates)
                .with_config(config.clone())
                .run();
            (matches, stats, view.node_count(), view.edge_count())
        })
    });
    let mut fetch = fetched.stats.clone();
    fetch.fragment_nodes = parts[0].2;
    fetch.fragment_edges = parts[0].3;
    fetch.fragment_build_nanos = fetch
        .fragment_build_nanos
        .saturating_add(build_started.elapsed().as_nanos() as u64);
    let steps = parts.iter().map(|(_, s, _, _)| s.steps).sum();
    let matches = MatchSet::new(parts.iter().flat_map(|(m, _, _, _)| m.iter().cloned()));
    (
        matches,
        fetch,
        Vf2Stats {
            steps,
            aborted: false,
        },
    )
}

/// `bSim` from an already-fetched [`CandidateSet`].
///
/// The simulation fixpoint is the unique maximal relation, so there is
/// nothing to split: the parallel win for `bSim` is the sharded fetch that
/// produced `fetched`. This wrapper exists so partitioned callers drive
/// both semantics through the same pool-aware surface.
pub fn parallel_bounded_simulation_match_prefetched(
    pattern: &Pattern,
    graph: &Graph,
    fetched: &CandidateSet,
    pool: &ArenaPool,
) -> (SimulationRelation, FetchStats) {
    pool.with_any(|scratch| bounded_simulation_match_prefetched(pattern, graph, fetched, scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use bgpq_access::{AccessConstraint, AccessIndexSet, AccessSchema};
    use bgpq_core::{fetch_candidate_sets, plan_for_indices, LookupMemo, Semantics};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// Years × awards feeding movies feeding actors, sized so candidate
    /// sets are big enough to split across several workers.
    fn setup() -> (Graph, AccessSchema, Pattern) {
        let mut b = GraphBuilder::new();
        let years: Vec<_> = (0..3)
            .map(|i| b.add_node("year", Value::Int(2010 + i)))
            .collect();
        let awards: Vec<_> = (0..2).map(|i| b.add_node("award", Value::Int(i))).collect();
        for i in 0..12i64 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(years[(i % 3) as usize], m).unwrap();
            b.add_edge(awards[(i % 2) as usize], m).unwrap();
            for j in 0..3 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        let g = b.build();
        let l = |n: &str| g.interner().get(n).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("year"), 3),
            AccessConstraint::global(l("award"), 2),
            AccessConstraint::new([l("year"), l("award")], l("movie"), 4),
            AccessConstraint::unary(l("movie"), l("actor"), 3),
        ]);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::always());
        let a = pb.node("award", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act);
        (g, schema, pb.build())
    }

    #[test]
    fn sharded_fetch_equals_serial_fetch_counters_included() {
        let (g, schema, q) = setup();
        let full = AccessIndexSet::build(&g, &schema);
        let plan = plan_for_indices(&q, &full, Semantics::Isomorphism).unwrap();
        let mut memo = LookupMemo::new();
        let serial = fetch_candidate_sets(&plan, &q, &g, &full, &mut memo);
        for parts in [1, 2, 4] {
            for threads in [1, 2] {
                let spec = PartitionSpec::hash(parts);
                let sharded = ShardedIndexSet::build(&g, &schema, &spec, threads);
                let fetched = sharded_fetch_candidate_sets(&plan, &q, &g, &sharded, threads);
                assert_eq!(
                    fetched.candidates, serial.candidates,
                    "P={parts} T={threads}"
                );
                assert_eq!(fetched.all_nodes, serial.all_nodes);
                assert_eq!(fetched.stats.index_lookups, serial.stats.index_lookups);
                assert_eq!(fetched.stats.lookups_deduped, serial.stats.lookups_deduped);
                assert_eq!(fetched.stats.nodes_returned, serial.stats.nodes_returned);
                assert_eq!(
                    fetched.stats.predicate_filtered,
                    serial.stats.predicate_filtered
                );
            }
        }
    }

    #[test]
    fn parallel_bvf2_equals_serial_for_every_thread_count() {
        let (g, schema, q) = setup();
        let full = AccessIndexSet::build(&g, &schema);
        let plan = plan_for_indices(&q, &full, Semantics::Isomorphism).unwrap();
        let mut memo = LookupMemo::new();
        let fetched = fetch_candidate_sets(&plan, &q, &g, &full, &mut memo);
        let pool = ArenaPool::new(4);
        let (serial, serial_fetch, _) = pool.with_any(|s| {
            bounded_subgraph_match_prefetched(&q, &g, &fetched, Vf2Config::default(), s)
        });
        assert!(!serial.is_empty(), "fixture must produce matches");
        for threads in [1, 2, 3, 4, 8] {
            let (parallel, fetch, _) = parallel_bounded_subgraph_match_prefetched(
                &q,
                &g,
                &fetched,
                Vf2Config::default(),
                &pool,
                threads,
            );
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(fetch.fragment_nodes, serial_fetch.fragment_nodes);
            assert_eq!(fetch.fragment_edges, serial_fetch.fragment_edges);
        }
    }

    #[test]
    fn budgeted_configs_take_the_serial_path() {
        let (g, schema, q) = setup();
        let full = AccessIndexSet::build(&g, &schema);
        let plan = plan_for_indices(&q, &full, Semantics::Isomorphism).unwrap();
        let mut memo = LookupMemo::new();
        let fetched = fetch_candidate_sets(&plan, &q, &g, &full, &mut memo);
        let pool = ArenaPool::new(4);
        let config = Vf2Config {
            max_matches: Some(3),
            max_steps: None,
        };
        let (serial, _, _) = pool
            .with_any(|s| bounded_subgraph_match_prefetched(&q, &g, &fetched, config.clone(), s));
        let (parallel, _, _) =
            parallel_bounded_subgraph_match_prefetched(&q, &g, &fetched, config, &pool, 4);
        // A budget must yield the exact serial prefix, not a per-worker one.
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 3);
    }

    #[test]
    fn parallel_bsim_equals_serial() {
        // a -> b fixture, simulation-bounded.
        let mut gb = GraphBuilder::new();
        for i in 0..6 {
            let a = gb.add_node("a", Value::Int(i));
            let b = gb.add_node("b", Value::Int(i));
            gb.add_edge(a, b).unwrap();
        }
        let g = gb.build();
        let la = g.interner().get("a").unwrap();
        let lb = g.interner().get("b").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(lb, 6),
            AccessConstraint::unary(lb, la, 1),
        ]);
        let full = AccessIndexSet::build(&g, &schema);
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pbn = pb.node("b", Predicate::always());
        pb.edge(pa, pbn);
        let q = pb.build();
        let plan = plan_for_indices(&q, &full, Semantics::Simulation).unwrap();
        let pool = ArenaPool::new(2);
        let mut memo = LookupMemo::new();
        let serial_fetch = fetch_candidate_sets(&plan, &q, &g, &full, &mut memo);
        let (serial, _) =
            pool.with_any(|s| bounded_simulation_match_prefetched(&q, &g, &serial_fetch, s));
        let spec = PartitionSpec::hash(3);
        let sharded = ShardedIndexSet::build(&g, &schema, &spec, 2);
        let fetched = sharded_fetch_candidate_sets(&plan, &q, &g, &sharded, 2);
        let (parallel, _) = parallel_bounded_simulation_match_prefetched(&q, &g, &fetched, &pool);
        assert_eq!(parallel, serial);
        assert!(!parallel.is_empty());
    }
}
