# Early adopters (the first ten users) with their posts and the tags those
# posts carry. Effectively bounded under the discovered social schema:
# posts are fetched through (user) -> (post, N), tags through
# (post) -> (tag, N).
node u: user where value < 10
node p: post
node t: tag
edge u -> p
edge p -> t
