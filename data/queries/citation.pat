# Recent papers (1995 or later), one paper they cite, and the venue the
# citing paper appeared in — the paper's year/venue star shape.
node p1: paper where value >= 1995
node p2: paper
node v: venue
edge p1 -> p2
edge p1 -> v
