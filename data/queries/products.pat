# Glowing reviews (rating 4 and up), the product they review and its brand.
# product -> brand is a functional dependency (bound 1), review -> product
# as well, so the fetched fragment stays tiny.
node r: review where value >= 4
node pr: product
node b: brand
edge r -> pr
edge pr -> b
